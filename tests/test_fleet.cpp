// Fleet-router tests: RouterPolicyRegistry validation, hand-checked
// round_robin / least_loaded dispatch arithmetic (with and without the
// outstanding-estimate drain), session-affinity stickiness under crash
// retries, --jobs byte-independence of the fleet JSON, router-seed
// sensitivity of the p2c stream, and the pooled-percentile merge against a
// naive single-list oracle.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "fleet/fleet.h"
#include "serve/session.h"

namespace mas::fleet {
namespace {

// Small, fast geometry + coarse buckets: the fleet semantics under test are
// in the routing pre-pass and the merge, not the simulated kernels.
FleetOptions FastOptions(int devices, const std::string& router) {
  FleetOptions options;
  options.devices = devices;
  options.router = RouterSpec::Parse(router);
  options.geometry = BertBaseGeometry();
  options.planner.min_context_bucket = 64;
  return options;
}

serve::RequestTrace HandTrace(std::vector<serve::ServeRequest> requests) {
  serve::RequestTrace trace;
  trace.name = "hand";
  trace.requests = std::move(requests);
  return trace;
}

std::string FleetJson(const FleetResult& result) {
  JsonWriter json;
  json.BeginObject();
  result.WriteJson(json);
  json.EndObject();
  return json.Take();
}

std::vector<int> Devices(const FleetResult& result) {
  std::vector<int> devices;
  for (const RouteAssignment& a : result.assignments) devices.push_back(a.device);
  return devices;
}

// ---------------------------------------------------------------- registry

TEST(RouterRegistry, UnknownPolicyThrowsListingTheCatalog) {
  try {
    RouterPolicyRegistry::Instance().Create(RouterSpec::Parse("bogus"));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus"), std::string::npos);
    EXPECT_NE(what.find("'round_robin'"), std::string::npos);
    EXPECT_NE(what.find("'least_loaded'"), std::string::npos);
    EXPECT_NE(what.find("'p2c'"), std::string::npos);
    EXPECT_NE(what.find("'session_affinity'"), std::string::npos);
  }
}

TEST(RouterRegistry, ListsEveryBuiltinWithDocs) {
  const std::vector<RouterPolicyInfo> infos = RouterPolicyRegistry::Instance().List();
  std::set<std::string> names;
  for (const RouterPolicyInfo& info : infos) {
    names.insert(info.name);
    EXPECT_FALSE(info.summary.empty()) << info.name;
  }
  EXPECT_TRUE(names.count("round_robin"));
  EXPECT_TRUE(names.count("least_loaded"));
  EXPECT_TRUE(names.count("p2c"));
  EXPECT_TRUE(names.count("session_affinity"));
}

TEST(RouterRegistry, FactoriesValidateParams) {
  auto create = [](const std::string& text) {
    return RouterPolicyRegistry::Instance().Create(RouterSpec::Parse(text));
  };
  EXPECT_NO_THROW(create("session_affinity:salt=7"));
  EXPECT_THROW(create("session_affinity:bogus=1"), Error);  // unknown key
  EXPECT_THROW(create("round_robin:rate=1"), Error);        // takes no params
  EXPECT_THROW(create("p2c:salt=1"), Error);                // takes no params
  EXPECT_THROW(RouterSpec::Parse("p2c:a=1,a=2"), Error);    // duplicate key
  EXPECT_THROW(RouterSpec::Parse(""), Error);               // empty head
}

// ------------------------------------------------------- dispatch arithmetic

TEST(FleetRouter, RoundRobinAlternatesByDispatchIndex) {
  Planner planner;
  FleetRouter fleet(planner, FastOptions(2, "round_robin"));
  const FleetResult result = fleet.Run(HandTrace({
      {0, 0, 100, 2, 1},
      {1, 0, 50, 1, 1},
      {2, 0, 10, 1, 1},
      {3, 0, 10, 1, 1},
  }));
  EXPECT_EQ(Devices(result), (std::vector<int>{0, 1, 0, 1}));
  EXPECT_EQ(result.devices[0].routed_requests, 2);
  EXPECT_EQ(result.devices[1].routed_requests, 2);
  // Tokens charged per request: prompt + decode + 1.
  EXPECT_EQ(result.devices[0].routed_tokens, (100 + 2 + 1) + (10 + 1 + 1));
  EXPECT_EQ(result.devices[1].routed_tokens, (50 + 1 + 1) + (10 + 1 + 1));
}

TEST(FleetRouter, LeastLoadedTracksCumulativeTokensWithoutDrain) {
  Planner planner;
  FleetOptions options = FastOptions(2, "least_loaded");
  options.drain_tokens_per_tick = 0;  // cumulative totals: hand arithmetic
  FleetRouter fleet(planner, options);
  // Charges: r0 = 103, r1 = 52, r2 = 52, r3 = 12.
  // r0 -> ties at {0, 0}, lowest index: device 0        -> {103, 0}
  // r1 -> device 1 (0 < 103)                            -> {103, 52}
  // r2 -> device 1 (52 < 103)                           -> {103, 104}
  // r3 -> device 0 (103 < 104)                          -> {115, 104}
  const FleetResult result = fleet.Run(HandTrace({
      {0, 0, 100, 2, 1},
      {1, 0, 50, 1, 1},
      {2, 0, 50, 1, 1},
      {3, 0, 10, 1, 1},
  }));
  EXPECT_EQ(Devices(result), (std::vector<int>{0, 1, 1, 0}));
}

TEST(FleetRouter, DrainDecaysTheOutstandingEstimateBetweenArrivals) {
  // r0 (103 tokens) lands on device 0. r1 arrives 20 ticks later.
  // Without drain the estimate still reads {103, 0} -> device 1. With
  // drain 10/tick, 20 elapsed ticks retire 200 tokens -> {0, 0} -> the tie
  // goes back to device 0.
  const auto route_second = [](std::int64_t drain) {
    Planner planner;
    FleetOptions options = FastOptions(2, "least_loaded");
    options.drain_tokens_per_tick = drain;
    FleetRouter fleet(planner, options);
    return Devices(fleet.Run(HandTrace({{0, 0, 100, 2, 1}, {1, 20, 50, 1, 1}})))[1];
  };
  EXPECT_EQ(route_second(0), 1);
  EXPECT_EQ(route_second(10), 0);
}

TEST(FleetRouter, PriorityTenantsDispatchFirstWithinATick) {
  Planner planner;
  FleetOptions options = FastOptions(2, "round_robin");
  options.tenants = TenantPolicySpec::Parse("priority:vip=1");
  FleetRouter fleet(planner, options);
  serve::RequestTrace trace = HandTrace({{0, 0, 32, 1, 1}, {1, 0, 32, 1, 1}});
  trace.requests[0].tenant = "low";
  trace.requests[1].tenant = "vip";
  const FleetResult result = fleet.Run(trace);
  // vip jumps the tick group, so it takes dispatch index 0 -> device 0.
  ASSERT_EQ(result.assignments.size(), 2u);
  EXPECT_EQ(result.assignments[0].tenant, "vip");
  EXPECT_EQ(result.assignments[0].device, 0);
  EXPECT_EQ(result.assignments[1].tenant, "low");
  EXPECT_EQ(result.assignments[1].device, 1);
}

// --------------------------------------------------------- session affinity

TEST(FleetRouter, SessionAffinitySticksPerTenantEvenUnderCrashRetries) {
  serve::SyntheticTraceSpec spec;
  spec.name = "affinity";
  spec.requests = 24;
  spec.seed = 7;
  spec.prompt_min = 16;
  spec.prompt_max = 64;
  spec.decode_min = 2;
  spec.decode_max = 6;
  spec.tenants = 3;
  const serve::RequestTrace trace = serve::GenerateTrace(spec);

  Planner planner;
  FleetOptions options = FastOptions(4, "session_affinity");
  options.session.fault = serve::FaultSpec::Parse("crash:prob=0.3");
  options.session.resilience.max_retries = 2;
  FleetRouter fleet(planner, options);
  const FleetResult result = fleet.Run(trace);

  // Every request of a tenant lands on one device — crash retries happen
  // inside the owning device's session and never migrate the tenant.
  std::map<std::string, int> home;
  for (const RouteAssignment& a : result.assignments) {
    const auto [it, inserted] = home.emplace(a.tenant, a.device);
    EXPECT_EQ(it->second, a.device) << "tenant " << a.tenant << " migrated";
  }
  EXPECT_EQ(home.size(), 3u);

  // The salt param re-hashes the placement deterministically.
  FleetOptions salted = FastOptions(4, "session_affinity:salt=9");
  FleetRouter salted_fleet(planner, salted);
  const FleetResult salted_result = salted_fleet.Run(trace);
  std::map<std::string, int> salted_home;
  for (const RouteAssignment& a : salted_result.assignments) salted_home.emplace(a.tenant, a.device);
  EXPECT_EQ(salted_home.size(), 3u);
  EXPECT_NE(FleetJson(result), FleetJson(salted_result));
}

// ------------------------------------------------------------- determinism

TEST(FleetRouter, FleetJsonIsByteIdenticalForAnyJobsValue) {
  serve::SyntheticTraceSpec spec;
  spec.name = "jobs";
  spec.requests = 12;
  spec.seed = 21;
  spec.prompt_min = 16;
  spec.prompt_max = 96;
  spec.decode_min = 1;
  spec.decode_max = 4;
  spec.tenants = 2;
  const serve::RequestTrace trace = serve::GenerateTrace(spec);

  std::vector<std::string> outputs;
  for (const int jobs : {1, 2, 8}) {
    Planner planner;  // fresh planner per run: no cross-run plan reuse
    FleetOptions options = FastOptions(3, "p2c");
    options.jobs = jobs;
    FleetRouter fleet(planner, options);
    outputs.push_back(FleetJson(fleet.Run(trace)));
  }
  EXPECT_EQ(outputs[0], outputs[1]);
  EXPECT_EQ(outputs[0], outputs[2]);
}

TEST(FleetRouter, P2cAssignmentsFollowTheRouterSeed) {
  serve::SyntheticTraceSpec spec;
  spec.name = "seed";
  spec.requests = 16;
  spec.seed = 3;
  spec.prompt_min = 16;
  spec.prompt_max = 32;
  spec.decode_min = 1;
  spec.decode_max = 2;
  const serve::RequestTrace trace = serve::GenerateTrace(spec);

  const auto devices_for_seed = [&](std::uint64_t seed) {
    Planner planner;
    FleetOptions options = FastOptions(4, "p2c");
    options.router_seed = seed;
    FleetRouter fleet(planner, options);
    return Devices(fleet.Run(trace));
  };
  const std::vector<int> a = devices_for_seed(1);
  EXPECT_EQ(a, devices_for_seed(1));  // replay
  EXPECT_NE(a, devices_for_seed(2));  // a fresh dispatch stream
}

// ------------------------------------------------------------------- merge

TEST(FleetMetrics, PooledPercentilesMatchTheSingleListOracle) {
  serve::SyntheticTraceSpec spec;
  spec.name = "pool";
  spec.requests = 18;
  spec.seed = 11;
  spec.prompt_min = 16;
  spec.prompt_max = 128;
  spec.decode_min = 1;
  spec.decode_max = 6;
  const serve::RequestTrace trace = serve::GenerateTrace(spec);

  Planner planner;
  FleetRouter fleet(planner, FastOptions(3, "round_robin"));
  const FleetResult result = fleet.Run(trace);

  // Naive oracle: concatenate every device's completed-request samples in
  // device order and take the same nearest-rank percentiles.
  std::vector<double> ttft;
  std::vector<double> tpot;
  for (const DeviceReport& device : result.devices) {
    for (const serve::RequestMetrics& r : device.result.requests) {
      if (r.outcome != serve::RequestOutcome::kCompleted) continue;
      ttft.push_back(static_cast<double>(r.TtftCycles()));
      if (r.decode_len > 0) tpot.push_back(r.TpotCycles());
    }
  }
  ASSERT_EQ(ttft.size(), 18u);
  EXPECT_EQ(result.metrics.completed, 18);
  EXPECT_DOUBLE_EQ(result.metrics.p50_ttft_cycles, serve::NearestRankPercentile(ttft, 50.0));
  EXPECT_DOUBLE_EQ(result.metrics.p95_ttft_cycles, serve::NearestRankPercentile(ttft, 95.0));
  EXPECT_DOUBLE_EQ(result.metrics.p99_ttft_cycles, serve::NearestRankPercentile(ttft, 99.0));
  EXPECT_DOUBLE_EQ(result.metrics.p99_tpot_cycles, serve::NearestRankPercentile(tpot, 99.0));
}

TEST(FleetRouter, OptionValidationFailsFast) {
  Planner planner;
  FleetOptions bad_devices = FastOptions(0, "round_robin");
  EXPECT_THROW(FleetRouter(planner, bad_devices), Error);

  FleetOptions bad_drain = FastOptions(2, "round_robin");
  bad_drain.drain_tokens_per_tick = -1;
  EXPECT_THROW(FleetRouter(planner, bad_drain), Error);

  FleetOptions bad_hw = FastOptions(2, "round_robin");
  bad_hw.device_hw = {sim::EdgeSimConfig()};  // 1 entry for 2 devices
  EXPECT_THROW(FleetRouter(planner, bad_hw), Error);

  // A non-positive weight is caught as soon as the spec is parsed.
  EXPECT_THROW(TenantPolicySpec::Parse("weighted:a=0"), Error);
  EXPECT_THROW(TenantPolicySpec::Parse("shuffle"), Error);  // unknown kind
}

}  // namespace
}  // namespace mas::fleet
