// common/json_reader tests: DOM parsing, writer round-trips, and the error
// paths the plan store relies on (truncated / mismatched / trailing input).
#include "common/json_reader.h"

#include <gtest/gtest.h>

#include "common/json_writer.h"
#include "common/status.h"

namespace mas::json {
namespace {

TEST(JsonReader, ParsesScalars) {
  EXPECT_TRUE(Parse("null").is_null());
  EXPECT_EQ(Parse("true").AsBool(), true);
  EXPECT_EQ(Parse("false").AsBool(), false);
  EXPECT_EQ(Parse("42").AsInt64(), 42);
  EXPECT_EQ(Parse("-7").AsInt64(), -7);
  EXPECT_DOUBLE_EQ(Parse("2.5").AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(Parse("1e3").AsDouble(), 1000.0);
  EXPECT_DOUBLE_EQ(Parse("-1.25e-2").AsDouble(), -0.0125);
  EXPECT_EQ(Parse("\"hi\"").AsString(), "hi");
  EXPECT_EQ(Parse("  42  ").AsInt64(), 42) << "surrounding whitespace";
}

TEST(JsonReader, NumbersInterconvert) {
  // Integral doubles read back as int64 (writers may emit either form).
  EXPECT_EQ(Parse("3545088").AsInt64(), 3545088);
  EXPECT_EQ(Parse("3.545088e+06").AsInt64(), 3545088);
  EXPECT_DOUBLE_EQ(Parse("3545088").AsDouble(), 3545088.0);
  // Non-integral doubles refuse integral access.
  EXPECT_THROW(Parse("2.5").AsInt64(), Error);
  // Out-of-int64-range doubles throw instead of hitting an undefined cast.
  EXPECT_THROW(Parse("1e300").AsInt64(), Error);
  EXPECT_THROW(Parse("-1e300").AsInt64(), Error);
  EXPECT_THROW(Parse("9223372036854775808").AsInt64(), Error);  // 2^63 exactly
  // Beyond-int64 integers degrade to double rather than overflowing.
  const Value big = Parse("99999999999999999999");
  EXPECT_TRUE(big.is_number());
  EXPECT_GT(big.AsDouble(), 9.9e19);
}

TEST(JsonReader, ParsesNestedContainers) {
  const Value v = Parse(R"({"a":[1,2,{"b":"x"}],"c":{"d":null},"e":[]})");
  ASSERT_TRUE(v.is_object());
  const auto& a = v.Get("a").AsArray();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0].AsInt64(), 1);
  EXPECT_EQ(a[2].Get("b").AsString(), "x");
  EXPECT_TRUE(v.Get("c").Get("d").is_null());
  EXPECT_TRUE(v.Get("e").AsArray().empty());
  EXPECT_EQ(v.Find("missing"), nullptr);
  EXPECT_THROW(v.Get("missing"), Error);
  // Members preserve document order.
  ASSERT_EQ(v.Members().size(), 3u);
  EXPECT_EQ(v.Members()[0].first, "a");
  EXPECT_EQ(v.Members()[2].first, "e");
}

TEST(JsonReader, DecodesEscapes) {
  EXPECT_EQ(Parse(R"("a\"b\\c\/d\n\t\r\b\f")").AsString(), "a\"b\\c/d\n\t\r\b\f");
  EXPECT_EQ(Parse(R"("Aé€")").AsString(), "A\xC3\xA9\xE2\x82\xAC");
}

TEST(JsonReader, RoundTripsJsonWriterOutput) {
  JsonWriter w;
  w.BeginObject();
  w.KeyValue("name", std::string("MAS (no overwrite) \"quoted\"\n"));
  w.KeyValue("count", static_cast<std::int64_t>(-12));
  w.KeyValue("ratio", 0.327);
  w.KeyValue("flag", true);
  w.BeginArray("items");
  w.Value(static_cast<std::int64_t>(1));
  w.Value("two");
  w.EndArray();
  w.EndObject();
  const std::string text = w.Take();

  const Value v = Parse(text);
  EXPECT_EQ(v.Get("name").AsString(), "MAS (no overwrite) \"quoted\"\n");
  EXPECT_EQ(v.Get("count").AsInt64(), -12);
  EXPECT_DOUBLE_EQ(v.Get("ratio").AsDouble(), 0.327);
  EXPECT_EQ(v.Get("flag").AsBool(), true);
  EXPECT_EQ(v.Get("items").AsArray()[1].AsString(), "two");
}

TEST(JsonReader, RejectsTruncatedInput) {
  for (const char* bad : {"", "{", "{\"a\":", "{\"a\":1", "[1,2", "\"unterminated",
                          "{\"a\":1,", "tru", "-"}) {
    EXPECT_THROW(Parse(bad), Error) << "input: " << bad;
  }
}

TEST(JsonReader, RejectsMalformedInput) {
  for (const char* bad : {"{a:1}",        // unquoted key
                          "{\"a\" 1}",    // missing colon
                          "[1 2]",        // missing comma
                          "{\"a\":1]",    // mismatched close
                          "[1,2}",        // mismatched close
                          "\"bad\\q\"",   // unknown escape
                          "\"bad\\u12g4\"",  // bad hex digit
                          "01a",          // garbage number tail
                          "nul",          // bad literal
                          "1.e5",         // no digits after '.'
                          "1e",           // no exponent digits
                          "\x01"}) {      // control character
    EXPECT_THROW(Parse(bad), Error) << "input: " << bad;
  }
}

TEST(JsonReader, RejectsTrailingGarbage) {
  EXPECT_THROW(Parse("{} {}"), Error);
  EXPECT_THROW(Parse("42 43"), Error);
  EXPECT_THROW(Parse("null,"), Error);
}

TEST(JsonReader, ErrorsCarryTheByteOffset) {
  try {
    Parse("{\"a\": bogus}");
    FAIL() << "expected an Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos) << e.what();
  }
}

TEST(JsonReader, RejectsAbsurdNesting) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_THROW(Parse(deep), Error);
}

}  // namespace
}  // namespace mas::json
