// Property sweeps over the tiling/dataflow machinery every scheduler builds
// on: row-block enumeration must partition the iteration space exactly,
// sharding must partition the blocks while keeping (batch, head) groups
// whole, and the byte model must be monotone in the tile factors.
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "dataflow/workloads.h"
#include "schedulers/common.h"
#include "sim/hardware_config.h"

namespace mas::detail {
namespace {

struct Case {
  AttentionShape shape;
  TilingConfig tiling;
};

std::vector<Case> Cases() {
  std::vector<Case> cases;
  const std::vector<AttentionShape> shapes = {
      {"square", 1, 4, 64, 16},          {"odd", 1, 3, 50, 16},
      {"tall", 2, 2, 128, 8},            {"cross", 1, 4, 96, 16, 33},
      {"decode", 1, 8, 1, 32, 77},       {"single", 1, 1, 7, 4},
  };
  const std::vector<TilingConfig> tilings = {
      {1, 1, 1, 1}, {1, 2, 16, 8}, {1, 4, 64, 64}, {2, 1, 7, 5}, {1, 3, 33, 17},
  };
  for (const auto& shape : shapes) {
    for (const auto& tiling : tilings) {
      // Clamp factors into range (Validate requires it).
      TilingConfig t = tiling;
      t.bb = std::min(t.bb, shape.batch);
      t.hh = std::min(t.hh, shape.heads);
      t.nq = std::min(t.nq, shape.seq_len);
      t.nkv = std::min(t.nkv, shape.kv());
      cases.push_back({shape, t});
    }
  }
  return cases;
}

class DataflowSweep : public testing::TestWithParam<Case> {};

TEST_P(DataflowSweep, RowBlocksPartitionIterationSpace) {
  const auto& [shape, tiling] = GetParam();
  const auto blocks = EnumerateRowBlocks(shape, tiling);
  EXPECT_EQ(static_cast<std::int64_t>(blocks.size()), tiling.RowBlocks(shape));

  // Every (b, h, n) coordinate is covered by exactly one block.
  std::map<std::tuple<std::int64_t, std::int64_t, std::int64_t>, int> covered;
  for (const RowBlock& rb : blocks) {
    EXPECT_GE(rb.bl, 1);
    EXPECT_GE(rb.hl, 1);
    EXPECT_GE(rb.nl, 1);
    EXPECT_LE(rb.nl, tiling.nq);
    for (std::int64_t b = rb.b0; b < rb.b0 + rb.bl; ++b)
      for (std::int64_t h = rb.h0; h < rb.h0 + rb.hl; ++h)
        for (std::int64_t n = rb.n0; n < rb.n0 + rb.nl; ++n) covered[{b, h, n}]++;
  }
  EXPECT_EQ(static_cast<std::int64_t>(covered.size()),
            shape.batch * shape.heads * shape.seq_len);
  for (const auto& [coord, count] : covered) {
    ASSERT_EQ(count, 1);
  }
}

TEST_P(DataflowSweep, KvBlocksPartitionKvAxis) {
  const auto& [shape, tiling] = GetParam();
  const auto kvs = EnumerateKvBlocks(shape, tiling);
  EXPECT_EQ(static_cast<std::int64_t>(kvs.size()), tiling.KvBlocks(shape));
  std::int64_t cursor = 0;
  for (const KvBlock& kv : kvs) {
    EXPECT_EQ(kv.n0, cursor);  // contiguous, in order
    EXPECT_GE(kv.nl, 1);
    EXPECT_LE(kv.nl, tiling.nkv);
    cursor += kv.nl;
  }
  EXPECT_EQ(cursor, shape.kv());
}

TEST_P(DataflowSweep, ShardingPartitionsBlocksAndKeepsGroupsWhole) {
  const auto& [shape, tiling] = GetParam();
  const sim::HardwareConfig hw = sim::EdgeSimConfig();
  const auto blocks = EnumerateRowBlocks(shape, tiling);
  const auto shards = ShardAcrossCores(blocks, hw);
  ASSERT_EQ(static_cast<std::int64_t>(shards.size()), hw.num_cores());

  // Partition: total count preserved, each (b0,h0,n0) appears once.
  std::set<std::tuple<std::int64_t, std::int64_t, std::int64_t>> seen;
  std::size_t total = 0;
  std::map<std::pair<std::int64_t, std::int64_t>, std::set<std::size_t>> group_cores;
  for (std::size_t core = 0; core < shards.size(); ++core) {
    for (const RowBlock& rb : shards[core]) {
      EXPECT_TRUE(seen.insert({rb.b0, rb.h0, rb.n0}).second);
      group_cores[{rb.b0, rb.h0}].insert(core);
      ++total;
    }
  }
  EXPECT_EQ(total, blocks.size());
  // A (batch, head) group never spans cores (K/V residency is per group).
  for (const auto& [group, cores] : group_cores) {
    EXPECT_EQ(cores.size(), 1u);
  }
}

TEST_P(DataflowSweep, BlockBytesMatchDimensions) {
  const auto& [shape, tiling] = GetParam();
  const sim::HardwareConfig hw = sim::EdgeSimConfig();
  const BlockBytes bytes = ComputeBlockBytes(shape, tiling, hw);
  const std::int64_t groups =
      std::min(tiling.bb, shape.batch) * std::min(tiling.hh, shape.heads);
  const std::int64_t rows = std::min(tiling.nq, shape.seq_len);
  EXPECT_EQ(bytes.q, groups * rows * shape.embed * hw.element_bytes);
  EXPECT_EQ(bytes.c, groups * rows * shape.kv() * hw.element_bytes);
  EXPECT_EQ(bytes.o, bytes.q);
  EXPECT_EQ(bytes.kv_group, groups * shape.kv() * shape.embed * hw.element_bytes);
  EXPECT_LE(bytes.kv_tile, bytes.kv_group);
  EXPECT_GT(bytes.kv_tile, 0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, DataflowSweep, testing::ValuesIn(Cases()),
                         [](const testing::TestParamInfo<Case>& info) {
                           const auto& c = info.param;
                           // Clamping can collapse distinct tilings to the
                           // same factors; the index keeps names unique.
                           return "i" + std::to_string(info.index) + "_" + c.shape.name +
                                  "_bb" + std::to_string(c.tiling.bb) + "hh" +
                                  std::to_string(c.tiling.hh) + "nq" +
                                  std::to_string(c.tiling.nq) + "nkv" +
                                  std::to_string(c.tiling.nkv);
                         });

TEST(PerCoreBudget, SplitsAcrossActiveCoresOnly) {
  const sim::HardwareConfig hw = sim::EdgeSimConfig();  // 2 cores, 5 MB
  // One head and one block: a single group -> one active core -> full L1.
  const AttentionShape one_group{"one", 1, 1, 32, 16};
  EXPECT_EQ(PerCoreL1Budget(one_group, {1, 1, 32, 32}, hw), hw.l1_bytes);
  // Many groups spread across both cores -> equal split.
  const AttentionShape many{"many", 1, 8, 64, 16};
  EXPECT_EQ(PerCoreL1Budget(many, {1, 1, 32, 32}, hw), hw.l1_bytes / 2);
}

}  // namespace
}  // namespace mas::detail
