// Serving-simulator tests: trace model (generation determinism, JSON
// round-trip, validation), ServePlanner context bucketing, and ServeSession
// semantics — hand-checkable TTFT/TPOT arithmetic, --jobs independence, and
// warm-plan-cache replay with zero search evaluations.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <string>

#include "common/json_writer.h"
#include "serve/session.h"

namespace mas::serve {
namespace {

sim::HardwareConfig Hw() { return sim::EdgeSimConfig(); }

ServePlannerOptions FastOptions() {
  ServePlannerOptions options;
  options.min_context_bucket = 64;
  return options;
}

// Small, fast geometry for the session tests.
AttentionGeometry Geometry() { return BertBaseGeometry(); }

std::string ResultJson(const ServeResult& result) {
  JsonWriter json;
  json.BeginObject();
  result.WriteJson(json, Hw());
  json.EndObject();
  return json.Take();
}

// ------------------------------------------------------------------ traces

TEST(ServeTrace, GeneratorIsDeterministic) {
  SyntheticTraceSpec spec;
  spec.requests = 16;
  spec.seed = 42;
  spec.speculation = 4;
  spec.speculative_fraction = 0.5;
  const RequestTrace a = GenerateTrace(spec);
  const RequestTrace b = GenerateTrace(spec);
  ASSERT_EQ(a.requests.size(), 16u);
  EXPECT_EQ(a.ToJson(), b.ToJson());

  spec.seed = 43;
  EXPECT_NE(GenerateTrace(spec).ToJson(), a.ToJson());
}

TEST(ServeTrace, JsonRoundTripIsByteStable) {
  const RequestTrace trace = GenerateTrace(FindTracePreset("mixed_sd"));
  const std::string json = trace.ToJson();
  const RequestTrace parsed = RequestTrace::FromJson(json);
  EXPECT_EQ(parsed.ToJson(), json);
  EXPECT_EQ(parsed.name, trace.name);
  EXPECT_EQ(parsed.TotalPromptTokens(), trace.TotalPromptTokens());
  EXPECT_EQ(parsed.TotalDecodeTokens(), trace.TotalDecodeTokens());
}

TEST(ServeTrace, SpeculationIsOptionalInJson) {
  const RequestTrace parsed = RequestTrace::FromJson(
      R"({"version":1,"name":"hand","requests":[)"
      R"({"id":0,"arrival_tick":0,"prompt_len":8,"decode_len":2}]})");
  ASSERT_EQ(parsed.requests.size(), 1u);
  EXPECT_EQ(parsed.requests[0].speculation, 1);
}

TEST(ServeTrace, TenantAndModelRoundTripAndStayOptional) {
  RequestTrace trace;
  trace.name = "tenants";
  trace.requests = {{0, 0, 8, 2, 1}, {1, 1, 8, 2, 1}};
  trace.requests[0].tenant = "alice";
  trace.requests[0].model = "llama3_8b";
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"tenant\":\"alice\""), std::string::npos);
  EXPECT_NE(json.find("\"model\":\"llama3_8b\""), std::string::npos);
  const RequestTrace parsed = RequestTrace::FromJson(json);
  EXPECT_EQ(parsed.ToJson(), json);
  EXPECT_EQ(parsed.requests[0].tenant, "alice");
  EXPECT_EQ(parsed.requests[0].model, "llama3_8b");
  // The untenanted request serializes without the optional keys at all.
  EXPECT_EQ(json.find("\"tenant\":\"\""), std::string::npos);
  EXPECT_EQ(parsed.requests[1].tenant, "");
  EXPECT_EQ(parsed.requests[1].model, "");
}

TEST(ServeTrace, TenantTaggingIsASaltedSideStream) {
  SyntheticTraceSpec spec;
  spec.requests = 12;
  spec.seed = 5;
  const RequestTrace plain = GenerateTrace(spec);
  spec.tenants = 3;
  const RequestTrace tagged = GenerateTrace(spec);
  ASSERT_EQ(tagged.requests.size(), plain.requests.size());
  std::set<std::string> tenants;
  for (std::size_t i = 0; i < plain.requests.size(); ++i) {
    // Lengths and arrivals are drawn from the same stream — tagging must
    // not shift them.
    EXPECT_EQ(tagged.requests[i].prompt_len, plain.requests[i].prompt_len);
    EXPECT_EQ(tagged.requests[i].decode_len, plain.requests[i].decode_len);
    EXPECT_EQ(tagged.requests[i].arrival_tick, plain.requests[i].arrival_tick);
    EXPECT_TRUE(plain.requests[i].tenant.empty());
    ASSERT_FALSE(tagged.requests[i].tenant.empty());
    tenants.insert(tagged.requests[i].tenant);
  }
  for (const std::string& t : tenants) EXPECT_TRUE(t == "t0" || t == "t1" || t == "t2") << t;
}

// Regression: a typoed request key must be rejected, and the error must
// carry the request index and byte offset so it is findable in a large
// trace file.
TEST(ServeTrace, UnknownRequestKeysAreRejectedWithIndexAndOffset) {
  const std::string json =
      R"({"version":1,"name":"typo","requests":[)"
      R"({"id":0,"arrival_tick":0,"prompt_len":8,"decode_len":2},)"
      R"({"id":1,"arrival_tick":0,"prompt_len":8,"decode_length":2}]})";
  try {
    RequestTrace::FromJson(json);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown request key 'decode_length'"), std::string::npos) << what;
    EXPECT_NE(what.find("trace request 1"), std::string::npos) << what;
    const std::size_t offset = json.find(R"({"id":1)");
    EXPECT_NE(what.find("byte offset " + std::to_string(offset)), std::string::npos) << what;
  }
}

TEST(ServeTrace, ValidationRejectsBadTraces) {
  RequestTrace unsorted;
  unsorted.requests = {{0, 5, 10, 1, 1}, {1, 3, 10, 1, 1}};
  EXPECT_THROW(unsorted.Validate(), Error);

  RequestTrace dup;
  dup.requests = {{0, 0, 10, 1, 1}, {0, 0, 10, 1, 1}};  // duplicate id, same tick
  EXPECT_THROW(dup.Validate(), Error);

  RequestTrace dup_across_ticks;
  dup_across_ticks.requests = {{7, 0, 10, 1, 1}, {7, 1, 10, 1, 1}};
  EXPECT_THROW(dup_across_ticks.Validate(), Error);

  RequestTrace bad_prompt;
  bad_prompt.requests = {{0, 0, 0, 1, 1}};
  EXPECT_THROW(bad_prompt.Validate(), Error);

  EXPECT_THROW(RequestTrace::FromJson("{\"version\":2,\"name\":\"x\",\"requests\":[]}"),
               Error);
}

// FromJson must turn EVERY malformed document into a clean mas::Error —
// never UB, never a partially-populated trace.

TEST(ServeTraceFuzz, EveryTruncationOfAValidDocumentThrows) {
  const std::string json = GenerateTrace(FindTracePreset("chat", 3)).ToJson();
  // The document ends in '}', so every proper prefix is incomplete JSON.
  for (std::size_t len = 0; len < json.size(); ++len) {
    EXPECT_THROW(RequestTrace::FromJson(json.substr(0, len)), Error) << "prefix len " << len;
  }
}

TEST(ServeTraceFuzz, WrongTypedFieldsThrow) {
  const auto doc = [](const std::string& version, const std::string& name,
                      const std::string& requests) {
    return "{\"version\":" + version + ",\"name\":" + name +
           ",\"requests\":" + requests + "}";
  };
  const std::string req = R"([{"id":0,"arrival_tick":0,"prompt_len":8,"decode_len":2}])";
  EXPECT_THROW(RequestTrace::FromJson(doc("\"1\"", "\"x\"", req)), Error);  // version string
  EXPECT_THROW(RequestTrace::FromJson(doc("1.5", "\"x\"", req)), Error);   // fractional
  EXPECT_THROW(RequestTrace::FromJson(doc("1", "7", req)), Error);         // name number
  EXPECT_THROW(RequestTrace::FromJson(doc("1", "\"x\"", "{}")), Error);    // not an array
  EXPECT_THROW(RequestTrace::FromJson(doc("1", "\"x\"", "[42]")), Error);  // non-object row
  EXPECT_THROW(RequestTrace::FromJson(doc("1", "\"x\"", "[null]")), Error);
  EXPECT_THROW(  // string id
      RequestTrace::FromJson(doc(
          "1", "\"x\"", R"([{"id":"0","arrival_tick":0,"prompt_len":8,"decode_len":2}])")),
      Error);
  EXPECT_THROW(  // boolean prompt_len
      RequestTrace::FromJson(doc(
          "1", "\"x\"", R"([{"id":0,"arrival_tick":0,"prompt_len":true,"decode_len":2}])")),
      Error);
  EXPECT_THROW(  // fractional arrival_tick
      RequestTrace::FromJson(doc(
          "1", "\"x\"", R"([{"id":0,"arrival_tick":0.5,"prompt_len":8,"decode_len":2}])")),
      Error);
  EXPECT_THROW(  // null decode_len
      RequestTrace::FromJson(doc(
          "1", "\"x\"", R"([{"id":0,"arrival_tick":0,"prompt_len":8,"decode_len":null}])")),
      Error);
  EXPECT_THROW(  // missing required field
      RequestTrace::FromJson(
          doc("1", "\"x\"", R"([{"id":0,"arrival_tick":0,"prompt_len":8}])")),
      Error);
}

TEST(ServeTraceFuzz, NegativeAndOverflowingTicksThrow) {
  const auto with_tick = [](const std::string& tick) {
    return R"({"version":1,"name":"x","requests":[{"id":0,"arrival_tick":)" + tick +
           R"(,"prompt_len":8,"decode_len":2}]})";
  };
  EXPECT_THROW(RequestTrace::FromJson(with_tick("-1")), Error);
  EXPECT_THROW(RequestTrace::FromJson(with_tick("9223372036854775808")), Error);  // 2^63
  EXPECT_THROW(RequestTrace::FromJson(with_tick("1e300")), Error);
  EXPECT_THROW(RequestTrace::FromJson(with_tick("-9e300")), Error);
  // The largest exactly-representable int64 double is fine mechanically but
  // negative lengths still die in Validate.
  EXPECT_THROW(
      RequestTrace::FromJson(
          R"({"version":1,"name":"x","requests":[)"
          R"({"id":0,"arrival_tick":0,"prompt_len":-8,"decode_len":2}]})"),
      Error);
  EXPECT_THROW(
      RequestTrace::FromJson(
          R"({"version":1,"name":"x","requests":[)"
          R"({"id":0,"arrival_tick":0,"prompt_len":8,"decode_len":-2}]})"),
      Error);
}

TEST(ServeTraceFuzz, DuplicateKeysThrowAtBothLevels) {
  // json::Parse itself keeps the last duplicate; FromJson must reject the
  // document rather than silently pick one.
  EXPECT_THROW(
      RequestTrace::FromJson(
          R"({"version":1,"version":1,"name":"x","requests":[]})"),
      Error);
  EXPECT_THROW(
      RequestTrace::FromJson(
          R"({"version":1,"name":"x","requests":[)"
          R"({"id":0,"id":1,"arrival_tick":0,"prompt_len":8,"decode_len":2}]})"),
      Error);
  EXPECT_THROW(
      RequestTrace::FromJson(
          R"({"version":1,"name":"x","requests":[)"
          R"({"id":0,"arrival_tick":0,"prompt_len":8,"decode_len":2,"decode_len":2}]})"),
      Error);
}

// A malformed request in a large trace must say WHICH request and WHERE in
// the document — not just what kind of JSON mistake it found.
TEST(ServeTraceErrors, PerRequestErrorsCarryIndexAndByteOffset) {
  const std::string doc =
      R"({"version":1,"name":"x","requests":[)"
      R"({"id":0,"arrival_tick":0,"prompt_len":8,"decode_len":2},)"
      R"({"id":1,"arrival_tick":1,"prompt_len":8,"decode_len":2},)"
      R"({"id":2,"arrival_tick":2,"prompt_len":"oops","decode_len":2}]})";
  try {
    RequestTrace::FromJson(doc);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("trace request 2"), std::string::npos) << what;
    // The reported offset is where the bad request's object starts.
    const std::size_t offset = doc.find(R"({"id":2)");
    ASSERT_NE(offset, std::string::npos);
    EXPECT_NE(what.find("byte offset " + std::to_string(offset)), std::string::npos)
        << what;
  }
}

TEST(ServeTraceErrors, LoadFileNamesThePath) {
  const std::string path = testing::TempDir() + "/mas_serve_bad_trace.json";
  RequestTrace trace;
  trace.requests = {{0, 0, 8, 2, 1}};
  trace.SaveFile(path);
  // Corrupt it: valid JSON, wrong version.
  {
    std::ofstream out(path, std::ios::trunc);
    out << R"({"version":9,"name":"x","requests":[]})" << "\n";
  }
  try {
    RequestTrace::LoadFile(path);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("version"), std::string::npos) << what;
  }
  EXPECT_THROW(RequestTrace::LoadFile(testing::TempDir() + "/mas_serve_nonexistent.json"),
               Error);
}

TEST(ServeTrace, PresetCatalog) {
  EXPECT_EQ(FindTracePreset("chat").name, "chat");
  EXPECT_EQ(FindTracePreset("decode_heavy").name, "decode_heavy");
  const SyntheticTraceSpec mixed = FindTracePreset("mixed_sd", 3);
  EXPECT_EQ(mixed.requests, 3);
  EXPECT_GT(mixed.speculative_fraction, 0.0);
  try {
    FindTracePreset("bogus");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("'chat'"), std::string::npos);
  }
}

TEST(ServeTrace, DecodeStepsRoundUp) {
  const ServeRequest r{0, 0, 16, 5, 2};
  EXPECT_EQ(r.DecodeSteps(), 3);  // 2 + 2 + 1
  const ServeRequest none{1, 0, 16, 0, 2};
  EXPECT_EQ(none.DecodeSteps(), 0);
}

// ---------------------------------------------------------------- bucketing

TEST(ServeBucket, PowerOfTwoSemantics) {
  EXPECT_EQ(ServePlanner::Bucket(1, 64), 64);
  EXPECT_EQ(ServePlanner::Bucket(64, 64), 64);
  EXPECT_EQ(ServePlanner::Bucket(65, 64), 128);
  EXPECT_EQ(ServePlanner::Bucket(1000, 64), 1024);
  EXPECT_EQ(ServePlanner::Bucket(1024, 64), 1024);
  EXPECT_EQ(ServePlanner::Bucket(3, 1), 4);
  EXPECT_THROW(ServePlanner::Bucket(0, 64), Error);
  EXPECT_THROW(ServePlanner::Bucket(10, 3), Error);  // non-power-of-two min
}

TEST(ServeBucket, DecodeStepsShareBucketedPlans) {
  Planner planner;
  ServePlanner serve_planner(planner, Hw(), Geometry(), FastOptions());
  // Contexts 65..128 all land in the 128 bucket: one plan, one search.
  const TuningPlan& first = serve_planner.DecodePlan(65);
  for (std::int64_t ctx = 66; ctx <= 128; ++ctx) {
    const TuningPlan& plan = serve_planner.DecodePlan(ctx);
    EXPECT_EQ(&plan, &first);  // same memoized object
  }
  EXPECT_EQ(serve_planner.plan_count(), 1);
  EXPECT_EQ(planner.plans_tuned(), 1);
  // Speculative width is part of the plan identity.
  (void)serve_planner.DecodePlan(100, 4);
  EXPECT_EQ(serve_planner.plan_count(), 2);
  // The simulated shape is the padded bucket.
  EXPECT_EQ(first.shape.kv(), 128);
  EXPECT_EQ(first.shape.seq_len, 1);
}

TEST(ServeBucket, UnknownMethodsFailFast) {
  Planner planner;
  ServePlannerOptions options = FastOptions();
  options.decode_method = "bogus";
  EXPECT_THROW(ServePlanner(planner, Hw(), Geometry(), options), Error);
}

// ------------------------------------------------------------------ session

// Hand-checkable two-request trace: expected TTFT/TPOT assembled from the
// individual phase simulations in documented batch order.
TEST(ServeSession, TtftTpotArithmeticOnTwoRequestTrace) {
  RequestTrace trace;
  trace.name = "hand";
  trace.requests = {
      {0, 0, 100, 2, 1},  // A: prefill 100 (bucket 128), two decode steps
      {1, 0, 50, 1, 1},   // B: prefill 50 (bucket 64), one decode step
  };

  Planner planner;
  ServePlanner serve_planner(planner, Hw(), Geometry(), FastOptions());
  ServeSessionOptions options;
  options.max_batch = 2;
  ServeSession session(serve_planner, options);
  const ServeResult result = session.Run(trace);

  // Reference cycles for each bucketed phase, via the same planner.
  auto cycles = [&](const TuningPlan& plan) {
    return planner.Simulate(plan, Hw()).cycles;
  };
  const std::uint64_t pa = cycles(serve_planner.PrefillPlan(100));   // bucket 128
  const std::uint64_t pb = cycles(serve_planner.PrefillPlan(50));    // bucket 64
  const std::uint64_t da = cycles(serve_planner.DecodePlan(100));    // bucket 128
  const std::uint64_t db = cycles(serve_planner.DecodePlan(50));     // bucket 64
  // A's second decode step (context 101) shares the 128 bucket -> same plan.
  ASSERT_EQ(&serve_planner.DecodePlan(101), &serve_planner.DecodePlan(100));

  // Step 0: prefill A then prefill B; step 1: decode A, decode B (B done);
  // step 2: decode A (done).
  const RequestMetrics& a = result.requests[0];
  const RequestMetrics& b = result.requests[1];
  EXPECT_EQ(a.arrival_cycles, 0u);
  EXPECT_EQ(b.arrival_cycles, 0u);
  EXPECT_EQ(a.first_token_cycles, pa);
  EXPECT_EQ(b.first_token_cycles, pa + pb);
  EXPECT_EQ(a.TtftCycles(), pa);
  EXPECT_EQ(b.TtftCycles(), pa + pb);
  EXPECT_EQ(b.finish_cycles, pa + pb + da + db);
  EXPECT_EQ(a.finish_cycles, pa + pb + da + db + da);
  EXPECT_DOUBLE_EQ(a.TpotCycles(), static_cast<double>(pb + da + db + da) / 2.0);
  EXPECT_DOUBLE_EQ(b.TpotCycles(), static_cast<double>(da + db));

  const ServeMetrics& m = result.metrics;
  EXPECT_EQ(m.makespan_cycles, pa + pb + da + db + da);
  EXPECT_EQ(m.requests, 2);
  EXPECT_EQ(m.prompt_tokens, 150);
  EXPECT_EQ(m.decode_tokens, 3);
  EXPECT_EQ(m.generated_tokens, 5);
  EXPECT_EQ(m.steps, 3);
  EXPECT_EQ(m.prefill_sims, 2);
  EXPECT_EQ(m.decode_sims, 3);
  EXPECT_DOUBLE_EQ(m.mean_ttft_cycles, static_cast<double>(pa + (pa + pb)) / 2.0);
}

TEST(ServeSession, MaxBatchOneSerializesAndArrivalsWaitForTheirTick) {
  RequestTrace trace;
  trace.requests = {
      {0, 0, 64, 0, 1},  // prefill-only request
      {1, 5, 64, 0, 1},  // arrives at tick 5: after request 0's only step
  };
  Planner planner;
  ServePlanner serve_planner(planner, Hw(), Geometry(), FastOptions());
  ServeSessionOptions options;
  options.max_batch = 1;
  ServeSession session(serve_planner, options);
  const ServeResult result = session.Run(trace);

  const std::uint64_t p = planner.Simulate(serve_planner.PrefillPlan(64), Hw()).cycles;
  // Request 1 became visible at tick 5 (clock p, after the idle jump) and
  // prefilled immediately: TTFT excludes the idle wait.
  EXPECT_EQ(result.requests[0].finish_cycles, p);
  EXPECT_EQ(result.requests[1].arrival_cycles, p);
  EXPECT_EQ(result.requests[1].TtftCycles(), p);
  EXPECT_EQ(result.metrics.makespan_cycles, 2 * p);
}

TEST(ServeSession, SpeculativeDecodeTakesFewerSteps) {
  RequestTrace trace;
  trace.requests = {{0, 0, 64, 5, 2}};  // 5 tokens, 2 per step -> 3 steps
  Planner planner;
  ServePlanner serve_planner(planner, Hw(), Geometry(), FastOptions());
  ServeSession session(serve_planner, ServeSessionOptions{});
  const ServeResult result = session.Run(trace);
  EXPECT_EQ(result.metrics.decode_sims, 3);
  EXPECT_EQ(result.requests[0].decode_steps, 3);
  // Four plans: the prefill (bucket 64), q=2 decode at context 64 (bucket
  // 64), q=2 decode at context 66 (bucket 128), and the q=1 tail step that
  // verifies the single remaining token (bucket 128).
  EXPECT_EQ(serve_planner.plan_count(), 4);
}

TEST(ServeSession, ResultIsIndependentOfJobs) {
  SyntheticTraceSpec spec;
  spec.requests = 6;
  spec.seed = 7;
  spec.prompt_min = 32;
  spec.prompt_max = 200;
  spec.decode_min = 2;
  spec.decode_max = 10;
  spec.speculation = 4;
  spec.speculative_fraction = 0.5;
  const RequestTrace trace = GenerateTrace(spec);

  std::string baseline;
  for (int jobs : {1, 2, 8}) {
    Planner planner;
    ServePlanner serve_planner(planner, Hw(), Geometry(), FastOptions());
    ServeSessionOptions options;
    options.max_batch = 3;
    options.jobs = jobs;
    ServeSession session(serve_planner, options);
    const std::string json = ResultJson(session.Run(trace));
    if (baseline.empty()) {
      baseline = json;
    } else {
      EXPECT_EQ(json, baseline) << "jobs=" << jobs;
    }
  }
}

TEST(ServeSession, WarmPlanCacheReplaysWithZeroEvaluations) {
  SyntheticTraceSpec spec;
  spec.requests = 4;
  spec.seed = 11;
  spec.prompt_min = 32;
  spec.prompt_max = 150;
  spec.decode_min = 1;
  spec.decode_max = 6;
  const RequestTrace trace = GenerateTrace(spec);

  Planner cold;
  ServePlanner cold_planner(cold, Hw(), Geometry(), FastOptions());
  ServeSession cold_session(cold_planner, ServeSessionOptions{});
  const std::string cold_json = ResultJson(cold_session.Run(trace));
  EXPECT_GT(cold.search_evaluations(), 0);
  const std::string store_json = cold.store().ToJson();

  // A fresh planner warmed from the serialized store replays the identical
  // trace without a single search evaluation.
  Planner warm;
  warm.store() = PlanStore::FromJson(store_json);
  ServePlanner warm_planner(warm, Hw(), Geometry(), FastOptions());
  ServeSession warm_session(warm_planner, ServeSessionOptions{});
  const std::string warm_json = ResultJson(warm_session.Run(trace));
  EXPECT_EQ(warm.search_evaluations(), 0);
  EXPECT_EQ(warm.plans_tuned(), 0);
  EXPECT_GT(warm.plans_reused(), 0);
  EXPECT_EQ(warm_json, cold_json);
  // Re-serializing the loaded store is byte-stable.
  EXPECT_EQ(warm.store().ToJson(), store_json);
}

TEST(ServeSession, PhaseMethodsFlipPerPhase) {
  RequestTrace trace;
  trace.requests = {{0, 0, 100, 2, 1}};
  Planner planner;
  ServePlanner serve_planner(planner, Hw(), Geometry(), FastOptions());
  ServeSession session(serve_planner, ServeSessionOptions{});
  (void)session.Run(trace);
  EXPECT_EQ(serve_planner.PrefillPlan(100).method, "MAS-Attention");
  EXPECT_EQ(serve_planner.DecodePlan(100).method, "FLAT");
}

}  // namespace
}  // namespace mas::serve
