// Golden-data checks (paper §5.1): every scheduler's functional twin must
// reproduce the reference exact attention for every tiling, shape and method.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "kernels/attention_kernels.h"
#include "schedulers/scheduler.h"
#include "tensor/tensor.h"

namespace mas {
namespace {

constexpr double kTol = 2e-5;

struct GoldenCase {
  Method method;
  std::int64_t b, h, n, e;
  TilingConfig tiling;
};

std::string CaseName(const testing::TestParamInfo<GoldenCase>& info) {
  const auto& c = info.param;
  std::string name = MethodName(c.method);
  for (char& ch : name) {
    if (ch == '-' || ch == ' ') ch = '_';
  }
  return name + "_b" + std::to_string(c.b) + "h" + std::to_string(c.h) + "n" +
         std::to_string(c.n) + "e" + std::to_string(c.e) + "_hh" + std::to_string(c.tiling.hh) +
         "nq" + std::to_string(c.tiling.nq) + "kv" + std::to_string(c.tiling.nkv);
}

class GoldenTest : public testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenTest, MatchesReferenceAttention) {
  const GoldenCase& c = GetParam();
  Rng rng(0xC0FFEE ^ static_cast<std::uint64_t>(c.n * 1315423911 + c.e));
  TensorF q(c.b, c.h, c.n, c.e), k(c.b, c.h, c.n, c.e), v(c.b, c.h, c.n, c.e);
  FillUniform(q, rng);
  FillUniform(k, rng);
  FillUniform(v, rng);
  const TensorF expected = ReferenceAttention(q, k, v);
  const auto scheduler = MakeScheduler(c.method);
  const TensorF actual = scheduler->Execute(q, k, v, c.tiling);
  EXPECT_LT(MaxAbsDiff(actual, expected), kTol) << scheduler->name();
}

std::vector<GoldenCase> AllGoldenCases() {
  std::vector<GoldenCase> cases;
  struct ShapeAndTilings {
    std::int64_t b, h, n, e;
    std::vector<TilingConfig> tilings;
  };
  const std::vector<ShapeAndTilings> shapes = {
      // Single head, single block.
      {1, 1, 8, 4, {{1, 1, 8, 8}, {1, 1, 4, 4}, {1, 1, 1, 1}}},
      // Multi-head with head blocking.
      {1, 4, 16, 8, {{1, 4, 16, 16}, {1, 2, 8, 4}, {1, 3, 5, 7}}},
      // Batched with batch blocking and ragged tiles.
      {2, 3, 12, 6, {{2, 3, 12, 12}, {1, 2, 5, 5}}},
      // Longer sequence, small embed (T5-Mini-like, scaled down).
      {1, 2, 48, 8, {{1, 2, 16, 16}, {1, 1, 12, 24}}},
  };
  for (Method m : AllMethods()) {
    for (const auto& st : shapes) {
      for (const auto& tiling : st.tilings) {
        cases.push_back({m, st.b, st.h, st.n, st.e, tiling});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllMethodsAllShapes, GoldenTest, testing::ValuesIn(AllGoldenCases()),
                         CaseName);

// All six functional twins agree with each other bit-for-bit-ish on the same
// inputs (they are all exact attention).
TEST(GoldenCross, AllMethodsAgree) {
  Rng rng(77);
  const std::int64_t b = 1, h = 2, n = 24, e = 8;
  TensorF q(b, h, n, e), k(b, h, n, e), v(b, h, n, e);
  FillUniform(q, rng);
  FillUniform(k, rng);
  FillUniform(v, rng);
  const TilingConfig tiling{1, 1, 8, 8};
  const auto schedulers = AllSchedulers();
  const TensorF base = schedulers.front()->Execute(q, k, v, tiling);
  for (std::size_t i = 1; i < schedulers.size(); ++i) {
    EXPECT_LT(MaxAbsDiff(schedulers[i]->Execute(q, k, v, tiling), base), kTol)
        << schedulers[i]->name();
  }
}

// Softmax rows of the functional output are convex combinations of V rows:
// outputs stay within V's per-column envelope.
TEST(GoldenProperty, OutputWithinValueEnvelope) {
  Rng rng(123);
  const std::int64_t n = 16, e = 4;
  TensorF q(1, 1, n, e), k(1, 1, n, e), v(1, 1, n, e);
  FillUniform(q, rng, -2.0f, 2.0f);
  FillUniform(k, rng, -2.0f, 2.0f);
  FillUniform(v, rng, -3.0f, 3.0f);
  const auto mas = MakeScheduler(Method::kMas);
  const TensorF o = mas->Execute(q, k, v, TilingConfig{1, 1, 4, 4});
  for (std::int64_t col = 0; col < e; ++col) {
    float lo = 1e9f, hi = -1e9f;
    for (std::int64_t r = 0; r < n; ++r) {
      lo = std::min(lo, v.at(0, 0, r, col));
      hi = std::max(hi, v.at(0, 0, r, col));
    }
    for (std::int64_t r = 0; r < n; ++r) {
      EXPECT_GE(o.at(0, 0, r, col), lo - 1e-4f);
      EXPECT_LE(o.at(0, 0, r, col), hi + 1e-4f);
    }
  }
}

}  // namespace
}  // namespace mas
