#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"

namespace mas {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(Rng, NextBelowRejectsZero) {
  Rng rng(7);
  EXPECT_THROW(rng.NextBelow(0), Error);
}

TEST(Rng, NextIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) {
    const int v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit in 500 draws
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, WeightedRespectsWeights) {
  Rng rng(19);
  std::vector<double> weights = {0.0, 3.0, 1.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) {
    ++counts[rng.NextWeighted(weights)];
  }
  EXPECT_EQ(counts[0], 0);  // zero weight never picked
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[2], 3.0, 0.4);
}

TEST(Rng, WeightedRejectsAllZero) {
  Rng rng(19);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_THROW(rng.NextWeighted(weights), Error);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(23);
  for (std::size_t n : {0u, 1u, 2u, 17u, 100u}) {
    auto perm = rng.Permutation(n);
    ASSERT_EQ(perm.size(), n);
    std::vector<std::size_t> sorted = perm;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(sorted[i], i);
    }
  }
}

TEST(Rng, PermutationShuffles) {
  Rng rng(29);
  const auto perm = rng.Permutation(50);
  int fixed_points = 0;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] == i) ++fixed_points;
  }
  EXPECT_LT(fixed_points, 10);  // expected ~1 fixed point
}

}  // namespace
}  // namespace mas
