// Simulation-level invariants across the six schedulers.
#include <cctype>
#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "dataflow/workloads.h"
#include "schedulers/scheduler.h"
#include "search/tiling_search.h"
#include "sim/hardware_config.h"

namespace mas {
namespace {

sim::HardwareConfig Hw() { return sim::EdgeSimConfig(); }
sim::EnergyModel Em() { return sim::EnergyModel{}; }

AttentionShape BertBase() { return FindNetwork("BERT-Base & T5-Base").shape; }

// Tuned tilings per method (coarse autotune) for BERT-Base.
TilingConfig Tuned(Method m, const AttentionShape& shape) {
  const auto sched = MakeScheduler(m);
  return search::AutoTile(*sched, shape, Hw(), Em());
}

TEST(SchedulerSim, AllMethodsProduceNonTrivialSchedules) {
  const AttentionShape shape = BertBase();
  for (Method m : AllMethods()) {
    const auto sched = MakeScheduler(m);
    const TilingConfig tiling = Tuned(m, shape);
    const sim::SimResult r = sched->Simulate(shape, tiling, Hw(), Em());
    EXPECT_GT(r.cycles, 0u) << sched->name();
    EXPECT_GT(r.energy.total_pj(), 0.0) << sched->name();
    EXPECT_GT(r.dram_read_bytes, 0) << sched->name();
    EXPECT_GT(r.dram_write_bytes, 0) << sched->name();
    EXPECT_GT(r.peak_l1_bytes, 0) << sched->name();
    EXPECT_LE(r.peak_l1_bytes, Hw().l1_bytes) << sched->name();
  }
}

TEST(SchedulerSim, MacComputeFloorRespected) {
  // No schedule can beat total MACs / total MAC throughput.
  const AttentionShape shape = BertBase();
  const std::uint64_t floor =
      static_cast<std::uint64_t>(shape.TotalMacs() / Hw().TotalMacThroughput());
  for (Method m : AllMethods()) {
    const auto sched = MakeScheduler(m);
    const sim::SimResult r = sched->Simulate(shape, Tuned(m, shape), Hw(), Em());
    EXPECT_GE(r.cycles, floor) << sched->name();
  }
}

TEST(SchedulerSim, MasApproachesComputeFloor) {
  // The paper's headline: with tuned tilings MAS hits (near) full MAC
  // utilization — cycles within ~15% of the dual-core MAC floor.
  const AttentionShape shape = BertBase();
  const auto mas = MakeScheduler(Method::kMas);
  const sim::SimResult r = mas->Simulate(shape, Tuned(Method::kMas, shape), Hw(), Em());
  const double floor = static_cast<double>(shape.TotalMacs()) /
                       static_cast<double>(Hw().TotalMacThroughput());
  EXPECT_LT(static_cast<double>(r.cycles), 1.15 * floor);
}

TEST(SchedulerSim, PaperOrderingHolds) {
  // Table 2's qualitative ordering under tuned tilings:
  // MAS < TileFlow/FuseMax < FLAT < Soft-Pipe < Layer-Wise.
  const AttentionShape shape = BertBase();
  std::map<Method, std::uint64_t> cycles;
  for (Method m : AllMethods()) {
    const auto sched = MakeScheduler(m);
    cycles[m] = sched->Simulate(shape, Tuned(m, shape), Hw(), Em()).cycles;
  }
  EXPECT_LT(cycles[Method::kMas], cycles[Method::kFlat]);
  EXPECT_LT(cycles[Method::kMas], cycles[Method::kSoftPipe]);
  EXPECT_LT(cycles[Method::kMas], cycles[Method::kLayerWise]);
  EXPECT_LE(cycles[Method::kMas], cycles[Method::kTileFlow]);
  EXPECT_LE(cycles[Method::kMas], cycles[Method::kFuseMax]);
  EXPECT_LT(cycles[Method::kFlat], cycles[Method::kSoftPipe]);
  EXPECT_LT(cycles[Method::kSoftPipe], cycles[Method::kLayerWise]);
}

TEST(SchedulerSim, DramWritesEqualMasVsFlat) {
  // §5.4.1: both confine DRAM writes to the final O — identical write bytes.
  const AttentionShape shape = BertBase();
  const auto flat = MakeScheduler(Method::kFlat);
  const auto mas = MakeScheduler(Method::kMas);
  const auto flat_r = flat->Simulate(shape, Tuned(Method::kFlat, shape), Hw(), Em());
  const auto mas_r = mas->Simulate(shape, Tuned(Method::kMas, shape), Hw(), Em());
  EXPECT_EQ(flat_r.dram_write_bytes, mas_r.dram_write_bytes);
  // And the writes are exactly one O tensor.
  EXPECT_EQ(flat_r.dram_write_bytes, shape.OperandBytes(Hw().element_bytes));
}

TEST(SchedulerSim, MasReadsAtLeastFlat) {
  // §5.4.2: MAS matches or exceeds FLAT's DRAM reads (overwrite reloads).
  const AttentionShape shape = BertBase();
  const auto flat = MakeScheduler(Method::kFlat);
  const auto mas = MakeScheduler(Method::kMas);
  const auto flat_r = flat->Simulate(shape, Tuned(Method::kFlat, shape), Hw(), Em());
  const auto mas_r = mas->Simulate(shape, Tuned(Method::kMas, shape), Hw(), Em());
  EXPECT_GE(mas_r.dram_read_bytes, flat_r.dram_read_bytes);
}

TEST(SchedulerSim, LayerWiseMovesIntermediatesThroughDram) {
  // Layer-Wise writes C and P to DRAM: its write traffic must include both
  // score-matrix round trips on top of O.
  const AttentionShape shape = BertBase();
  const auto lw = MakeScheduler(Method::kLayerWise);
  const auto r = lw->Simulate(shape, Tuned(Method::kLayerWise, shape), Hw(), Em());
  const std::int64_t eb = Hw().element_bytes;
  const std::int64_t score_bytes = shape.ScoreElements() * eb;
  const std::int64_t o_bytes = shape.OperandBytes(eb);
  EXPECT_EQ(r.dram_write_bytes, 2 * score_bytes + o_bytes);  // C + P + O
}

TEST(SchedulerSim, SoftPipeWritesPOnly) {
  const AttentionShape shape = BertBase();
  const auto sp = MakeScheduler(Method::kSoftPipe);
  const auto r = sp->Simulate(shape, Tuned(Method::kSoftPipe, shape), Hw(), Em());
  const std::int64_t eb = Hw().element_bytes;
  EXPECT_EQ(r.dram_write_bytes, shape.ScoreElements() * eb + shape.OperandBytes(eb));
}

TEST(SchedulerSim, PeEnergyScheduleInvariant) {
  // §5.3.3: MAC-PE energy identical across methods (same real MACs); VEC-PE
  // energy may differ only for methods with extra vector work (TileFlow's
  // split passes, FuseMax's online rescales).
  const AttentionShape shape = BertBase();
  std::map<Method, sim::SimResult> results;
  for (Method m : AllMethods()) {
    const auto sched = MakeScheduler(m);
    results.emplace(m, sched->Simulate(shape, Tuned(m, shape), Hw(), Em()));
  }
  // Tolerance is relative: the MAC count is identical but the per-tile pJ
  // contributions are accumulated in different orders for different tilings.
  const double base_mac = results.at(Method::kLayerWise).energy.mac_pe_pj;
  const double tol = base_mac * 1e-9;
  for (Method m : {Method::kSoftPipe, Method::kFlat, Method::kTileFlow}) {
    EXPECT_NEAR(results.at(m).energy.mac_pe_pj, base_mac, tol) << MethodName(m);
  }
  // MAS may redo interrupted tiles (>= base); FuseMax runs the same MACs.
  EXPECT_GE(results.at(Method::kMas).energy.mac_pe_pj, base_mac - tol);
  EXPECT_NEAR(results.at(Method::kFuseMax).energy.mac_pe_pj, base_mac, tol);
}

TEST(SchedulerSim, EnergyOrderingMatchesPaper) {
  // Table 3's qualitative shape: MAS saves big vs Layer-Wise/Soft-Pipe/
  // TileFlow and is close to FLAT.
  const AttentionShape shape = BertBase();
  std::map<Method, double> energy;
  for (Method m : AllMethods()) {
    const auto sched = MakeScheduler(m);
    energy[m] = sched->Simulate(shape, Tuned(m, shape), Hw(), Em()).energy.total_pj();
  }
  EXPECT_LT(energy[Method::kMas], energy[Method::kLayerWise]);
  EXPECT_LT(energy[Method::kMas], energy[Method::kSoftPipe]);
  EXPECT_LT(energy[Method::kMas], energy[Method::kTileFlow]);
  // FLAT is within ~25% of MAS either way (paper: 0.02%..54% savings).
  EXPECT_LT(std::abs(energy[Method::kFlat] - energy[Method::kMas]) / energy[Method::kMas],
            0.6);
}

TEST(SchedulerSim, InfeasibleTilingRejected) {
  // A tiling whose C strip alone exceeds L1 must be rejected by Fits and
  // refused by Simulate.
  const AttentionShape shape = FindNetwork("Llama3-8B & T5-3B (T5-XL)").shape;
  const TilingConfig huge{1, 32, 512, 512};  // C strip = 32*512*512*2 = 16 MB
  for (Method m : AllMethods()) {
    const auto sched = MakeScheduler(m);
    EXPECT_FALSE(sched->Fits(shape, huge, Hw())) << sched->name();
    EXPECT_THROW(sched->Simulate(shape, huge, Hw(), Em()), Error) << sched->name();
  }
}

TEST(SchedulerSim, TimelineRecordsAllResources) {
  const AttentionShape shape{"tiny", 1, 2, 64, 16};
  const auto mas = MakeScheduler(Method::kMas);
  const TilingConfig tiling{1, 1, 32, 32};
  const auto r = mas->Simulate(shape, tiling, Hw(), Em(), /*record_timeline=*/true);
  ASSERT_FALSE(r.timeline.empty());
  bool saw_mac = false, saw_vec = false, saw_dma = false;
  for (const auto& entry : r.timeline) {
    saw_mac |= entry.resource == sim::ResourceKind::kMac;
    saw_vec |= entry.resource == sim::ResourceKind::kVec;
    saw_dma |= entry.resource == sim::ResourceKind::kDma;
    EXPECT_LE(entry.start, entry.end);
    EXPECT_FALSE(entry.name.empty());
  }
  EXPECT_TRUE(saw_mac);
  EXPECT_TRUE(saw_vec);
  EXPECT_TRUE(saw_dma);
}

// Parameterized sweep: the qualitative MAS < FLAT ordering holds across all
// Table-1 networks, not just BERT-Base.
class NetworkSweep : public testing::TestWithParam<NetworkWorkload> {};

TEST_P(NetworkSweep, MasBeatsFlat) {
  const AttentionShape& shape = GetParam().shape;
  const auto flat = MakeScheduler(Method::kFlat);
  const auto mas = MakeScheduler(Method::kMas);
  const auto flat_r = flat->Simulate(shape, Tuned(Method::kFlat, shape), Hw(), Em());
  const auto mas_r = mas->Simulate(shape, Tuned(Method::kMas, shape), Hw(), Em());
  EXPECT_LT(mas_r.cycles, flat_r.cycles) << shape.ToString();
}

TEST_P(NetworkSweep, MasBeatsLayerWiseByALot) {
  const AttentionShape& shape = GetParam().shape;
  const auto lw = MakeScheduler(Method::kLayerWise);
  const auto mas = MakeScheduler(Method::kMas);
  const auto lw_r = lw->Simulate(shape, Tuned(Method::kLayerWise, shape), Hw(), Em());
  const auto mas_r = mas->Simulate(shape, Tuned(Method::kMas, shape), Hw(), Em());
  EXPECT_GT(static_cast<double>(lw_r.cycles) / static_cast<double>(mas_r.cycles), 1.5)
      << shape.ToString();
}

INSTANTIATE_TEST_SUITE_P(AllNetworks, NetworkSweep, testing::ValuesIn(Table1Networks()),
                         [](const testing::TestParamInfo<NetworkWorkload>& info) {
                           std::string name = info.param.name;
                           std::string out;
                           for (char ch : name) {
                             if (std::isalnum(static_cast<unsigned char>(ch))) out += ch;
                           }
                           return out;
                         });

}  // namespace
}  // namespace mas
