// Registry surface tests: scheduler and strategy catalogs, compat-enum
// resolution, and unknown-name error reporting.
#include "schedulers/registry.h"

#include <gtest/gtest.h>

#include <set>

#include "common/status.h"
#include "schedulers/scheduler.h"
#include "search/strategy.h"

namespace mas {
namespace {

TEST(SchedulerRegistryTest, AllSevenSchedulersResolveByName) {
  const char* names[] = {"Layer-Wise", "Soft-Pipe",     "FLAT",
                         "TileFlow",   "FuseMax",       "MAS-Attention",
                         "MAS (no overwrite)"};
  for (const char* name : names) {
    const SchedulerInfo* info = SchedulerRegistry::Instance().Find(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_EQ(info->name, name);
    const auto sched = SchedulerRegistry::Instance().Create(name);
    ASSERT_NE(sched, nullptr) << name;
    // The factory's product and the descriptor agree on the compat enum.
    EXPECT_EQ(sched->method(), info->method) << name;
    EXPECT_EQ(sched->name(), info->name) << name;
  }
}

TEST(SchedulerRegistryTest, PaperOrderMatchesLegacyAllMethods) {
  const std::vector<Method> methods = SchedulerRegistry::Instance().PaperMethods();
  ASSERT_EQ(methods.size(), 6u);
  EXPECT_EQ(methods, AllMethods());
  // Paper columns are 0..5 in order.
  const auto list = SchedulerRegistry::Instance().List(/*include_ablations=*/false);
  ASSERT_EQ(list.size(), 6u);
  for (std::size_t i = 0; i < list.size(); ++i) {
    EXPECT_EQ(list[i].paper_column, static_cast<int>(i)) << list[i].name;
    EXPECT_FALSE(list[i].is_ablation) << list[i].name;
    EXPECT_EQ(list[i].method, methods[i]);
  }
}

TEST(SchedulerRegistryTest, AblationIsFlaggedAndExcludedFromPaperSet) {
  const SchedulerInfo* abl = SchedulerRegistry::Instance().Find("MAS (no overwrite)");
  ASSERT_NE(abl, nullptr);
  EXPECT_TRUE(abl->is_ablation);
  EXPECT_EQ(abl->method, Method::kMasNoOverwrite);

  const auto all = SchedulerRegistry::Instance().List(/*include_ablations=*/true);
  const auto paper = SchedulerRegistry::Instance().List(/*include_ablations=*/false);
  EXPECT_EQ(all.size(), paper.size() + 1);
  // Ablations sort after the paper columns.
  EXPECT_TRUE(all.back().is_ablation);
}

TEST(SchedulerRegistryTest, UnknownNameErrorListsTheAvailableSet) {
  try {
    SchedulerRegistry::Instance().Create("NoSuchMethod");
    FAIL() << "expected an Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown method 'NoSuchMethod'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'MAS-Attention'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'FLAT'"), std::string::npos) << msg;
  }
  EXPECT_THROW(SchedulerRegistry::Instance().Resolve("typo"), Error);
}

TEST(SchedulerRegistryTest, MethodNameRoutesThroughTheRegistry) {
  EXPECT_STREQ(MethodName(Method::kFlat), "FLAT");
  EXPECT_STREQ(MethodName(Method::kMasNoOverwrite), "MAS (no overwrite)");
  // Unregistered ids degrade to the legacy placeholder instead of throwing.
  EXPECT_STREQ(MethodName(static_cast<Method>(1234)), "?");
  // Returned pointers are stable across calls (deque-backed storage).
  EXPECT_EQ(MethodName(Method::kMas), MethodName(Method::kMas));
}

TEST(SchedulerRegistryTest, ParseMethodListResolvesThroughRegistry) {
  EXPECT_EQ(ParseMethodList("all"), AllMethods());
  const auto picked = ParseMethodList("FLAT,MAS-Attention,MAS (no overwrite)");
  ASSERT_EQ(picked.size(), 3u);
  EXPECT_EQ(picked[0], Method::kFlat);
  EXPECT_EQ(picked[1], Method::kMas);
  EXPECT_EQ(picked[2], Method::kMasNoOverwrite);
  EXPECT_THROW(ParseMethodList("FLAT,bogus"), Error);
  EXPECT_THROW(ParseMethodList(""), Error);
}

TEST(SchedulerRegistryTest, RejectsDuplicateRegistrations) {
  // Force the built-in registrations first: Register() itself deliberately
  // does not (the built-ins register *through* it).
  ASSERT_NE(SchedulerRegistry::Instance().Find("FLAT"), nullptr);
  EXPECT_THROW(SchedulerRegistry::Instance().Register(
                   SchedulerInfo{"FLAT", 2, false, "dup", Method::kFlat},
                   [] { return SchedulerRegistry::Instance().Create("FLAT"); }),
               Error);
}

TEST(StrategyRegistryTest, AllThreeStrategiesResolveByName) {
  for (const char* name : {"grid", "ga", "mcts"}) {
    const search::StrategyInfo* info = search::StrategyRegistry::Instance().Find(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_EQ(info->name, name);
    const search::Strategy& strategy = search::StrategyRegistry::Instance().Get(name);
    EXPECT_EQ(strategy.info().name, name);
    // Singleton instances: repeated lookups return the same object.
    EXPECT_EQ(&strategy, &search::StrategyRegistry::Instance().Get(name));
  }
  std::set<std::string> names;
  for (const auto& info : search::StrategyRegistry::Instance().List()) {
    names.insert(info.name);
  }
  EXPECT_TRUE(names.count("grid"));
  EXPECT_TRUE(names.count("ga"));
  EXPECT_TRUE(names.count("mcts"));
}

TEST(StrategyRegistryTest, UnknownStrategyErrorListsTheAvailableSet) {
  try {
    search::StrategyRegistry::Instance().Get("annealing");
    FAIL() << "expected an Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown search strategy 'annealing'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'grid'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'mcts'"), std::string::npos) << msg;
  }
}

TEST(StrategyRegistryTest, RunSearchMatchesCompatWrappers) {
  // The compat free functions and the registry path must be byte-identical.
  const auto mas = SchedulerRegistry::Instance().Create("MAS-Attention");
  const AttentionShape shape{"tiny", 1, 2, 64, 16};
  const sim::HardwareConfig hw = sim::EdgeSimConfig();
  const sim::EnergyModel em;

  {
    search::TilingProblem a(*mas, shape, hw, em);
    search::TilingProblem b(*mas, shape, hw, em);
    search::GridOptions opts;
    opts.coarse = true;
    const auto wrapped = search::GridSearch(a, opts);
    const auto direct = search::RunSearch(b, search::SearchSpec::AutoTileDefault());
    EXPECT_EQ(wrapped.best, direct.best);
    EXPECT_EQ(wrapped.best_cycles, direct.best_cycles);
    EXPECT_EQ(wrapped.evaluations, direct.evaluations);
    ASSERT_EQ(wrapped.trace.size(), direct.trace.size());
  }
  {
    search::TilingProblem a(*mas, shape, hw, em);
    search::TilingProblem b(*mas, shape, hw, em);
    search::MctsOptions opts;
    opts.iterations = 64;
    opts.seed = 5;
    const auto wrapped = search::MctsSearch(a, opts);
    search::SearchSpec spec;
    spec.strategy = "mcts";
    spec.iterations = 64;
    spec.seed = 5;
    const auto direct = search::RunSearch(b, spec);
    EXPECT_EQ(wrapped.best, direct.best);
    EXPECT_EQ(wrapped.best_cycles, direct.best_cycles);
    EXPECT_EQ(wrapped.evaluations, direct.evaluations);
  }
}

// The dangling-reference regression for the satellite fix: TilingProblem must
// keep working after the HardwareConfig and EnergyModel temporaries passed to
// its constructor die.
TEST(TilingProblemLifetime, SurvivesTemporaryHardwareAndEnergyConfigs) {
  const auto mas = SchedulerRegistry::Instance().Create("MAS-Attention");
  const AttentionShape shape{"tiny", 1, 2, 64, 16};
  auto make_problem = [&] {
    // Both configs are temporaries scoped to this lambda.
    return std::make_unique<search::TilingProblem>(*mas, shape, sim::EdgeSimConfig(),
                                                   sim::EnergyModel{});
  };
  auto problem = make_problem();
  search::TilingProblem stable(*mas, shape, sim::EdgeSimConfig(), sim::EnergyModel{});
  const TilingConfig tiling{1, 1, 16, 16};
  EXPECT_TRUE(problem->Feasible(tiling));
  EXPECT_EQ(problem->Evaluate(tiling), stable.Evaluate(tiling));
}

}  // namespace
}  // namespace mas
