// mas_lint battery: every registered rule fires on a seeded fixture
// violation and is silenceable via `// mas-lint: allow(...)`; the allowlist
// file is honored; unknown rule names list the catalog; output is
// byte-identical across reruns and input orders.
#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "common/status.h"
#include "lint/lint.h"

namespace mas::lint {
namespace {

LintReport Lint(const std::vector<SourceFile>& files, LintOptions options = {}) {
  return RunLint(files, options);
}

std::vector<std::string> RuleNames(const LintReport& report) {
  std::vector<std::string> names;
  for (const LintFinding& f : report.findings) names.push_back(f.rule);
  return names;
}

// ------------------------------------------------------------------ catalog

TEST(LintRegistry, CatalogListsEveryBuiltinInRegistrationOrder) {
  const std::vector<LintRuleInfo> rules = LintRuleRegistry::Instance().List();
  const std::vector<std::string> expected = {
      "no-wallclock",        "rng-discipline", "unordered-iteration",
      "concurrency-leak",    "json-schema-version", "error-catalog",
      "env-discipline",      "suppression-hygiene"};
  ASSERT_EQ(rules.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(rules[i].name, expected[i]);
    EXPECT_FALSE(rules[i].summary.empty());
  }
}

TEST(LintRegistry, UnknownRuleThrowsListingCatalog) {
  try {
    (void)LintRuleRegistry::Instance().Resolve("no-such-rule");
    FAIL() << "expected mas::Error";
  } catch (const Error& e) {
    const std::string msg = e.raw_message();
    EXPECT_NE(msg.find("unknown lint rule 'no-such-rule'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'no-wallclock'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'suppression-hygiene'"), std::string::npos) << msg;
  }
}

TEST(LintRegistry, RunLintRejectsUnknownRuleName) {
  LintOptions options;
  options.rules = {"no-wallclock", "bogus"};
  EXPECT_THROW(Lint({{"a.cpp", "int x;\n"}}, options), Error);
}

TEST(LintRegistry, FindReturnsNullForUnknown) {
  EXPECT_EQ(LintRuleRegistry::Instance().Find("nope"), nullptr);
  ASSERT_NE(LintRuleRegistry::Instance().Find("error-catalog"), nullptr);
}

// ---------------------------------------------------------- rule: fixtures
// Each rule fires on a seeded violation and goes quiet under an inline
// `// mas-lint: allow(<rule>) <reason>` on the line or the line above.

struct RuleFixture {
  const char* rule;
  const char* path;
  const char* violation;  // one line that must fire exactly this rule
};

const RuleFixture kFixtures[] = {
    {"no-wallclock", "src/x/clsocks.cpp",
     "auto t0 = std::chrono::steady_clock::now();"},
    {"no-wallclock", "src/x/ctime.cpp", "long stamp = time(nullptr);"},
    {"rng-discipline", "src/x/rng.cpp", "std::mt19937 gen(42);"},
    {"rng-discipline", "src/x/crand.cpp", "int r = rand();"},
    {"concurrency-leak", "src/x/hw.cpp",
     "unsigned n = std::thread::hardware_concurrency();"},
    {"env-discipline", "src/x/env.cpp", "const char* v = std::getenv(\"HOME\");"},
    {"error-catalog", "src/x/err.cpp",
     "void f() { MAS_FAIL() << \"unknown policy '\" << p << \"'\"; }"},
};

TEST(LintRules, EachFixtureViolationFires) {
  for (const RuleFixture& fx : kFixtures) {
    const LintReport report = Lint({{fx.path, std::string(fx.violation) + "\n"}});
    ASSERT_EQ(report.findings.size(), 1u) << fx.rule << ": " << fx.violation;
    EXPECT_EQ(report.findings[0].rule, fx.rule);
    EXPECT_EQ(report.findings[0].file, fx.path);
    EXPECT_EQ(report.findings[0].line, 1);
  }
}

TEST(LintRules, InlineAllowOnSameLineSilencesEachFixture) {
  for (const RuleFixture& fx : kFixtures) {
    const std::string text = std::string(fx.violation) + "  // mas-lint: allow(" +
                             fx.rule + ") fixture justification\n";
    const LintReport report = Lint({{fx.path, text}});
    EXPECT_TRUE(report.findings.empty()) << fx.rule;
    EXPECT_EQ(report.suppressed, 1) << fx.rule;
  }
}

TEST(LintRules, InlineAllowOnLineAboveSilencesEachFixture) {
  for (const RuleFixture& fx : kFixtures) {
    const std::string text = std::string("// mas-lint: allow(") + fx.rule +
                             ") fixture justification\n" + fx.violation + "\n";
    const LintReport report = Lint({{fx.path, text}});
    EXPECT_TRUE(report.findings.empty()) << fx.rule;
    EXPECT_EQ(report.suppressed, 1) << fx.rule;
  }
}

TEST(LintRules, AllowTwoLinesAboveDoesNotSilence) {
  const std::string text =
      "// mas-lint: allow(rng-discipline) too far away\n"
      "int unrelated;\n"
      "std::mt19937 gen(1);\n";
  const LintReport report = Lint({{"src/x/far.cpp", text}});
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, "rng-discipline");
}

// ------------------------------------------------------------ no-wallclock

TEST(LintNoWallclock, MemberNamedTimeIsNotFlagged) {
  const LintReport report =
      Lint({{"a.cpp", "double t = sim.time();\nauto u = obj->clock();\n"}});
  EXPECT_TRUE(report.findings.empty());
}

TEST(LintNoWallclock, QualifiedStdTimeIsFlagged) {
  const LintReport report = Lint({{"a.cpp", "long s = std::time(nullptr);\n"}});
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, "no-wallclock");
}

TEST(LintNoWallclock, OtherClassQualifiedTimeIsNotFlagged) {
  const LintReport report = Lint({{"a.cpp", "long s = SimClock::time(now);\n"}});
  EXPECT_TRUE(report.findings.empty());
}

// -------------------------------------------------------- rng-discipline

TEST(LintRngDiscipline, CommonRngIsExempt) {
  const LintReport report =
      Lint({{"src/common/rng.cpp", "std::mt19937 reference_stream(7);\n"}});
  EXPECT_TRUE(report.findings.empty());
}

TEST(LintRngDiscipline, RandomDeviceFlagged) {
  const LintReport report = Lint({{"b.cpp", "std::random_device rd;\n"}});
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, "rng-discipline");
}

// --------------------------------------------------- unordered-iteration

TEST(LintUnorderedIteration, RangeForOverUnorderedMapFires) {
  const std::string text =
      "std::unordered_map<std::string, int> counts;\n"
      "void dump() { for (const auto& [k, v] : counts) use(k, v); }\n";
  const LintReport report = Lint({{"c.cpp", text}});
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, "unordered-iteration");
  EXPECT_EQ(report.findings[0].line, 2);
}

TEST(LintUnorderedIteration, LookupsDoNotFire) {
  const std::string text =
      "std::unordered_map<std::string, int> counts;\n"
      "bool has(const std::string& k) { return counts.find(k) != counts.end(); }\n"
      "void put(const std::string& k) { counts.emplace(k, 1); }\n";
  EXPECT_TRUE(Lint({{"c.cpp", text}}).findings.empty());
}

TEST(LintUnorderedIteration, ExplicitBeginIterationFires) {
  const std::string text =
      "std::unordered_set<int> seen;\n"
      "void walk() { for (auto it = seen.begin(); it != seen.end(); ++it) use(*it); }\n";
  const LintReport report = Lint({{"c.cpp", text}});
  ASSERT_GE(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, "unordered-iteration");
}

TEST(LintUnorderedIteration, MemberDeclaredInSiblingHeaderIsKnown) {
  const SourceFile header{"src/m/tracker.h",
                          "struct T { std::unordered_map<std::string, int> live_; };\n"};
  const SourceFile source{"src/m/tracker.cpp",
                          "void T::dump() { for (const auto& kv : live_) use(kv); }\n"};
  const LintReport report = Lint({header, source});
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].file, "src/m/tracker.cpp");
  EXPECT_EQ(report.findings[0].rule, "unordered-iteration");
}

TEST(LintUnorderedIteration, RangeForOverVectorDoesNotFire) {
  const std::string text =
      "std::vector<int> items;\n"
      "void dump() { for (int v : items) use(v); }\n";
  EXPECT_TRUE(Lint({{"c.cpp", text}}).findings.empty());
}

// --------------------------------------------------- json-schema-version

TEST(LintJsonSchemaVersion, ServeEmitterWithoutVersionFires) {
  const std::string text =
      "void Result::WriteJson(JsonWriter& w) const {\n"
      "  w.BeginObject();\n"
      "  w.KeyValue(\"cycles\", cycles);\n"
      "  w.EndObject();\n"
      "}\n";
  const LintReport report = Lint({{"src/serve/out.cpp", text}});
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, "json-schema-version");
  EXPECT_EQ(report.findings[0].line, 1);
}

TEST(LintJsonSchemaVersion, VersionedEmitterPasses) {
  const std::string text =
      "void Result::WriteJson(JsonWriter& w) const {\n"
      "  w.BeginObject();\n"
      "  w.KeyValue(\"schema_version\", std::int64_t{3});\n"
      "  w.EndObject();\n"
      "}\n";
  EXPECT_TRUE(Lint({{"src/fleet/out.cpp", text}}).findings.empty());
}

TEST(LintJsonSchemaVersion, OutsideServeFleetIsOutOfScope) {
  const std::string text = "void Result::WriteJson(JsonWriter& w) const { w.Null(); }\n";
  EXPECT_TRUE(Lint({{"src/report/out.cpp", text}}).findings.empty());
}

TEST(LintJsonSchemaVersion, DeclarationsAndCallsAreIgnored) {
  const std::string text =
      "void WriteJson(JsonWriter& w) const;\n"
      "void run() { result.WriteJson(w); }\n";
  EXPECT_TRUE(Lint({{"src/serve/decl.cpp", text}}).findings.empty());
}

// --------------------------------------------------------- error-catalog

TEST(LintErrorCatalog, UnknownWithOptionsListingPasses) {
  const std::string text =
      "void f() { MAS_FAIL() << \"unknown policy '\" << p << \"'; options: \" "
      "<< AvailableNames(); }\n";
  EXPECT_TRUE(Lint({{"d.cpp", text}}).findings.empty());
}

TEST(LintErrorCatalog, ExpectationStringsInTestsDoNotFire) {
  const std::string text =
      "TEST(R, X) { EXPECT_THROW(reg.Create(\"zzz\"), Error); }\n"
      "const char* kMsg = \"unknown method\";\n";
  EXPECT_TRUE(Lint({{"tests/test_x.cpp", text}}).findings.empty());
}

// ---------------------------------------------------- suppression-hygiene

TEST(LintSuppressionHygiene, MissingReasonIsAFindingAndDoesNotSuppress) {
  const std::string text = "int r = rand();  // mas-lint: allow(rng-discipline)\n";
  const LintReport report = Lint({{"e.cpp", text}});
  const std::vector<std::string> rules = RuleNames(report);
  EXPECT_NE(std::find(rules.begin(), rules.end(), "rng-discipline"), rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "suppression-hygiene"), rules.end());
}

TEST(LintSuppressionHygiene, UnknownRuleInAllowListsCatalog) {
  const std::string text = "// mas-lint: allow(not-a-rule) because reasons\nint x;\n";
  const LintReport report = Lint({{"e.cpp", text}});
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, "suppression-hygiene");
  EXPECT_NE(report.findings[0].message.find("'no-wallclock'"), std::string::npos)
      << report.findings[0].message;
}

TEST(LintSuppressionHygiene, MalformedDirectiveIsAFinding) {
  const std::string text = "// mas-lint: disable everything\nint x;\n";
  const LintReport report = Lint({{"e.cpp", text}});
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, "suppression-hygiene");
}

TEST(LintSuppressionHygiene, ProseMentioningTheGrammarIsNotADirective) {
  const std::string text =
      "// Suppress with `// mas-lint: allow(<rule>) <reason>` on the line.\nint x;\n";
  EXPECT_TRUE(Lint({{"e.cpp", text}}).findings.empty());
}

TEST(LintSuppressionHygiene, CommaListSuppressesSeveralRules) {
  const std::string text =
      "// mas-lint: allow(rng-discipline,no-wallclock) fixture reason\n"
      "long t = time(nullptr) + rand();\n";
  const LintReport report = Lint({{"e.cpp", text}});
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.suppressed, 2);
}

// -------------------------------------------------------------- allowlist

TEST(LintAllowlist, EntrySuppressesByPathSuffix) {
  LintOptions options;
  options.allowlist = {{"rng-discipline", "x/legacy.cpp", "audited legacy stream"}};
  const LintReport report =
      Lint({{"src/x/legacy.cpp", "int r = rand();\n"},
            {"src/x/fresh.cpp", "int r = rand();\n"}},
           options);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].file, "src/x/fresh.cpp");
  EXPECT_EQ(report.suppressed, 1);
}

TEST(LintAllowlist, ParseRejectsUnknownRuleAndMissingFields) {
  EXPECT_THROW(ParseAllowlist("bogus-rule a.cpp reason\n", "t"), Error);
  EXPECT_THROW(ParseAllowlist("rng-discipline a.cpp\n", "t"), Error);  // no reason
  const auto entries =
      ParseAllowlist("# comment\n\nrng-discipline a.cpp audited reason\n", "t");
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].rule, "rng-discipline");
  EXPECT_EQ(entries[0].path_suffix, "a.cpp");
  EXPECT_EQ(entries[0].reason, "audited reason");
}

// ----------------------------------------------------------- determinism

TEST(LintDeterminism, OutputIsByteIdenticalAcrossRerunsAndInputOrder) {
  const std::vector<SourceFile> files = {
      {"src/x/a.cpp", "int r = rand();\nlong t = time(nullptr);\n"},
      {"src/x/b.cpp", "std::random_device rd;\n"},
      {"src/serve/c.cpp", "void R::WriteJson(JsonWriter& w) { w.Null(); }\n"},
  };
  std::vector<SourceFile> reversed(files.rbegin(), files.rend());
  const std::string first = FormatFindings(Lint(files).findings);
  const std::string again = FormatFindings(Lint(files).findings);
  const std::string shuffled = FormatFindings(Lint(reversed).findings);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, again);
  EXPECT_EQ(first, shuffled);
  // Sorted by (file, line, rule): serve/c.cpp sorts before x/a.cpp.
  EXPECT_EQ(first.find("src/serve/c.cpp"), 0u) << first;
}

TEST(LintDeterminism, FindingLinesAreOneBased) {
  const LintReport report = Lint({{"f.cpp", "\n\nint r = rand();\n"}});
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].line, 3);
}

// ------------------------------------------------------- rule selection

TEST(LintOptionsTest, RuleSubsetRunsOnlyThoseRules) {
  LintOptions options;
  options.rules = {"no-wallclock"};
  const LintReport report =
      Lint({{"g.cpp", "int r = rand();\nlong t = time(nullptr);\n"}}, options);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, "no-wallclock");
}

}  // namespace
}  // namespace mas::lint
