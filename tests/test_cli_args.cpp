#include "cli/args.h"

#include <limits>

#include <gtest/gtest.h>

namespace mas::cli {
namespace {

TEST(ArgParser, DefaultsSurviveEmptyArgv) {
  ArgParser parser("test");
  const std::string* s = parser.AddString("name", "fallback", "h");
  const std::int64_t* i = parser.AddInt("count", 7, "h");
  const double* d = parser.AddDouble("rate", 1.5, "h");
  const bool* b = parser.AddBool("verbose", false, "h");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(parser.Parse(1, argv));
  EXPECT_EQ(*s, "fallback");
  EXPECT_EQ(*i, 7);
  EXPECT_DOUBLE_EQ(*d, 1.5);
  EXPECT_FALSE(*b);
}

TEST(ArgParser, EqualsForm) {
  ArgParser parser("test");
  const std::string* s = parser.AddString("name", "", "h");
  const std::int64_t* i = parser.AddInt("count", 0, "h");
  const char* argv[] = {"prog", "--name=abc", "--count=42"};
  ASSERT_TRUE(parser.Parse(3, argv));
  EXPECT_EQ(*s, "abc");
  EXPECT_EQ(*i, 42);
}

TEST(ArgParser, SpaceForm) {
  ArgParser parser("test");
  const std::string* s = parser.AddString("name", "", "h");
  const double* d = parser.AddDouble("rate", 0.0, "h");
  const char* argv[] = {"prog", "--name", "xyz", "--rate", "2.25"};
  ASSERT_TRUE(parser.Parse(5, argv));
  EXPECT_EQ(*s, "xyz");
  EXPECT_DOUBLE_EQ(*d, 2.25);
}

TEST(ArgParser, BareBoolSetsTrue) {
  ArgParser parser("test");
  const bool* b = parser.AddBool("verbose", false, "h");
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(parser.Parse(2, argv));
  EXPECT_TRUE(*b);
}

TEST(ArgParser, ExplicitBoolValues) {
  ArgParser parser("test");
  const bool* a = parser.AddBool("a", false, "h");
  const bool* b = parser.AddBool("b", true, "h");
  const char* argv[] = {"prog", "--a=true", "--b=false"};
  ASSERT_TRUE(parser.Parse(3, argv));
  EXPECT_TRUE(*a);
  EXPECT_FALSE(*b);
}

TEST(ArgParser, PositionalArgumentsCollected) {
  ArgParser parser("test");
  parser.AddInt("n", 0, "h");
  const char* argv[] = {"prog", "first", "--n=1", "second"};
  ASSERT_TRUE(parser.Parse(4, argv));
  EXPECT_EQ(parser.positional(), (std::vector<std::string>{"first", "second"}));
}

TEST(ArgParser, UnknownFlagThrows) {
  ArgParser parser("test");
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_THROW(parser.Parse(2, argv), Error);
}

TEST(ArgParser, MalformedIntThrows) {
  ArgParser parser("test");
  parser.AddInt("n", 0, "h");
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_THROW(parser.Parse(2, argv), Error);
}

TEST(ArgParser, MalformedBoolThrows) {
  ArgParser parser("test");
  parser.AddBool("b", false, "h");
  const char* argv[] = {"prog", "--b=maybe"};
  EXPECT_THROW(parser.Parse(2, argv), Error);
}

TEST(ArgParser, MissingValueThrows) {
  ArgParser parser("test");
  parser.AddInt("n", 0, "h");
  const char* argv[] = {"prog", "--n"};
  EXPECT_THROW(parser.Parse(2, argv), Error);
}

TEST(ArgParser, DuplicateRegistrationThrows) {
  ArgParser parser("test");
  parser.AddInt("n", 0, "h");
  EXPECT_THROW(parser.AddString("n", "", "h"), Error);
}

TEST(ArgParser, HelpReturnsFalse) {
  ArgParser parser("test");
  parser.AddInt("n", 0, "h");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(parser.Parse(2, argv));
}

TEST(ArgParser, UsageListsFlagsAndDefaults) {
  ArgParser parser("my tool");
  parser.AddInt("iterations", 10, "how many iterations");
  parser.AddString("mode", "fast", "run mode");
  const std::string usage = parser.Usage("tool");
  EXPECT_NE(usage.find("my tool"), std::string::npos);
  EXPECT_NE(usage.find("--iterations"), std::string::npos);
  EXPECT_NE(usage.find("how many iterations"), std::string::npos);
  EXPECT_NE(usage.find("default: 10"), std::string::npos);
  EXPECT_NE(usage.find("--mode"), std::string::npos);
  EXPECT_NE(usage.find("default: fast"), std::string::npos);
}

TEST(ArgParser, OverflowingIntThrowsInsteadOfSaturating) {
  // Pre-fix, strtoll's ERANGE saturation silently assigned LLONG_MAX; an
  // overflowing literal must fail loudly like ParsePositiveInt already does.
  ArgParser parser("test");
  const std::int64_t* n = parser.AddInt("search-budget", 7, "h");
  const char* argv[] = {"prog", "--search-budget=99999999999999999999"};
  EXPECT_THROW(parser.Parse(2, argv), Error);
  EXPECT_EQ(*n, 7);  // the default must survive the failed assignment

  ArgParser neg("test");
  neg.AddInt("n", 0, "h");
  const char* argv_neg[] = {"prog", "--n=-99999999999999999999"};
  EXPECT_THROW(neg.Parse(2, argv_neg), Error);
}

TEST(ArgParser, Int64ExtremesStillParse) {
  ArgParser parser("test");
  const std::int64_t* lo = parser.AddInt("lo", 0, "h");
  const std::int64_t* hi = parser.AddInt("hi", 0, "h");
  const char* argv[] = {"prog", "--lo=-9223372036854775808", "--hi=9223372036854775807"};
  ASSERT_TRUE(parser.Parse(3, argv));
  EXPECT_EQ(*lo, std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(*hi, std::numeric_limits<std::int64_t>::max());
}

TEST(ArgParser, OverflowingDoubleThrows) {
  ArgParser parser("test");
  parser.AddDouble("rate", 0.0, "h");
  const char* argv[] = {"prog", "--rate=1e99999"};
  EXPECT_THROW(parser.Parse(2, argv), Error);
}

TEST(ArgParser, LargeFiniteDoubleStillParses) {
  ArgParser parser("test");
  const double* d = parser.AddDouble("rate", 0.0, "h");
  const char* argv[] = {"prog", "--rate=1.5e308"};
  ASSERT_TRUE(parser.Parse(2, argv));
  EXPECT_DOUBLE_EQ(*d, 1.5e308);
}

TEST(ArgParser, SubnormalDoubleStillParses) {
  // glibc strtod sets ERANGE on gradual underflow even though the returned
  // subnormal is the correctly rounded value; only overflow must fail.
  ArgParser parser("test");
  const double* d = parser.AddDouble("rate", 1.0, "h");
  const char* argv[] = {"prog", "--rate=1e-320"};
  ASSERT_TRUE(parser.Parse(2, argv));
  EXPECT_GT(*d, 0.0);
  EXPECT_LT(*d, 1e-300);
}

TEST(ArgParser, NegativeIntAccepted) {
  ArgParser parser("test");
  const std::int64_t* n = parser.AddInt("n", 0, "h");
  const char* argv[] = {"prog", "--n=-5"};
  ASSERT_TRUE(parser.Parse(2, argv));
  EXPECT_EQ(*n, -5);
}

TEST(ArgParser, RepeatedFlagWithConflictingValuesThrows) {
  ArgParser parser("test");
  parser.AddInt("count", 0, "h");
  const char* argv[] = {"prog", "--count=3", "--count=4"};
  try {
    parser.Parse(3, argv);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    // The message names the flag and BOTH values so the user can see which
    // half of the copy-pasted command line to delete.
    EXPECT_NE(what.find("--count"), std::string::npos) << what;
    EXPECT_NE(what.find("'3'"), std::string::npos) << what;
    EXPECT_NE(what.find("'4'"), std::string::npos) << what;
  }
}

TEST(ArgParser, IdenticalRepeatsPass) {
  ArgParser parser("test");
  const std::int64_t* i = parser.AddInt("count", 0, "h");
  const std::string* s = parser.AddString("name", "", "h");
  const char* argv[] = {"prog", "--count=3", "--name", "x", "--count", "3", "--name=x"};
  ASSERT_TRUE(parser.Parse(7, argv));
  EXPECT_EQ(*i, 3);
  EXPECT_EQ(*s, "x");
}

TEST(ArgParser, AllowRepetitionOptsIntoLastWins) {
  ArgParser parser("test");
  const std::int64_t* i = parser.AddInt("count", 0, "h");
  parser.AllowRepetition("count");
  const char* argv[] = {"prog", "--count=3", "--count=4"};
  ASSERT_TRUE(parser.Parse(3, argv));
  EXPECT_EQ(*i, 4);
  // Opting in an unregistered flag is a programming error.
  EXPECT_THROW(parser.AllowRepetition("bogus"), Error);
}

TEST(ArgParser, BareBoolThenExplicitFalseConflicts) {
  ArgParser parser("test");
  parser.AddBool("verbose", false, "h");
  // Bare --verbose means true; --verbose=false then contradicts it.
  const char* argv[] = {"prog", "--verbose", "--verbose=false"};
  EXPECT_THROW(parser.Parse(3, argv), Error);

  ArgParser same("test");
  const bool* b = same.AddBool("verbose", false, "h");
  const char* argv2[] = {"prog", "--verbose", "--verbose=true"};
  ASSERT_TRUE(same.Parse(3, argv2));  // bare form and "true" agree
  EXPECT_TRUE(*b);
}

TEST(ParseInt64Sequence, SingleValue) {
  EXPECT_EQ(ParseInt64Sequence("512"), (std::vector<std::int64_t>{512}));
}

TEST(ParseInt64Sequence, CommaList) {
  EXPECT_EQ(ParseInt64Sequence("128,256,512"), (std::vector<std::int64_t>{128, 256, 512}));
}

TEST(ParseInt64Sequence, GeometricRange) {
  EXPECT_EQ(ParseInt64Sequence("128:4096:*2"),
            (std::vector<std::int64_t>{128, 256, 512, 1024, 2048, 4096}));
  EXPECT_EQ(ParseInt64Sequence("10:1000:*10"), (std::vector<std::int64_t>{10, 100, 1000}));
}

TEST(ParseInt64Sequence, GeometricRangeIsTheDefaultStep) {
  EXPECT_EQ(ParseInt64Sequence("128:1024"),
            (std::vector<std::int64_t>{128, 256, 512, 1024}));
}

TEST(ParseInt64Sequence, ArithmeticRange) {
  EXPECT_EQ(ParseInt64Sequence("128:640:+128"),
            (std::vector<std::int64_t>{128, 256, 384, 512, 640}));
}

TEST(ParseInt64Sequence, InclusiveEndOnlyWhenStepLandsOnIt) {
  EXPECT_EQ(ParseInt64Sequence("128:1000:*2"), (std::vector<std::int64_t>{128, 256, 512}));
}

TEST(ParseInt64Sequence, StepsNearInt64MaxWithoutOverflow) {
  // 2^62 doubled would overflow int64; the loop must stop cleanly instead.
  EXPECT_EQ(ParseInt64Sequence("4611686018427387904:9223372036854775807:*2"),
            (std::vector<std::int64_t>{4611686018427387904LL}));
  EXPECT_EQ(
      ParseInt64Sequence("9223372036854775806:9223372036854775807:+3"),
      (std::vector<std::int64_t>{9223372036854775806LL}));
}

TEST(ParseInt64Sequence, RejectsOutOfRangeLiterals) {
  EXPECT_THROW(ParseInt64Sequence("99999999999999999999999"), Error);
}

TEST(ParseInt64Sequence, RejectsMalformedInput) {
  EXPECT_THROW(ParseInt64Sequence(""), Error);
  EXPECT_THROW(ParseInt64Sequence("abc"), Error);
  EXPECT_THROW(ParseInt64Sequence("128,"), Error);
  EXPECT_THROW(ParseInt64Sequence("0"), Error);
  EXPECT_THROW(ParseInt64Sequence("-128"), Error);
  EXPECT_THROW(ParseInt64Sequence("512:128"), Error);
  EXPECT_THROW(ParseInt64Sequence("128:512:*1"), Error);
  EXPECT_THROW(ParseInt64Sequence("128:512:2"), Error);
  EXPECT_THROW(ParseInt64Sequence("128:512:+0"), Error);
}

// The examples' positional-argument parser: strict full-string errno/ERANGE
// protocol, so "12abc" and overflowing text fail loudly instead of silently
// parsing to a prefix / 0 / a saturated value (the old std::atoll behavior).
TEST(ParsePositiveInt64, AcceptsPositiveIntegers) {
  EXPECT_EQ(ParsePositiveInt64("1", "arg"), 1);
  EXPECT_EQ(ParsePositiveInt64("8192", "arg"), 8192);
  EXPECT_EQ(ParsePositiveInt64("9223372036854775807", "arg"), INT64_MAX);
}

TEST(ParsePositiveInt64, RejectsGarbageInsteadOfParsingZero) {
  EXPECT_THROW(ParsePositiveInt64("", "arg"), Error);
  EXPECT_THROW(ParsePositiveInt64("abc", "arg"), Error);
  EXPECT_THROW(ParsePositiveInt64("12abc", "arg"), Error);  // atoll would give 12
  EXPECT_THROW(ParsePositiveInt64("0", "arg"), Error);
  EXPECT_THROW(ParsePositiveInt64("-8", "arg"), Error);
}

TEST(ParsePositiveInt64, RejectsOverflowInsteadOfSaturating) {
  EXPECT_THROW(ParsePositiveInt64("9223372036854775808", "arg"), Error);
  EXPECT_THROW(ParsePositiveInt64("99999999999999999999999", "arg"), Error);
}

TEST(ParsePositiveInt64, EnforcesCallerCap) {
  // The examples cap geometric-growth operands (e.g. max_context <= 2^24) so
  // `ctx *= 2` loops cannot run toward signed overflow.
  EXPECT_EQ(ParsePositiveInt64("16777216", "arg", std::int64_t{1} << 24), 1 << 24);
  try {
    ParsePositiveInt64("16777217", "max_context", std::int64_t{1} << 24);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("max_context"), std::string::npos);
  }
}

}  // namespace
}  // namespace mas::cli
