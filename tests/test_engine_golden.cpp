// Golden-equivalence tests for the engine rewrite.
//
// tests/golden_engine_table1.inc pins (AutoTile tiling, cycles, energy
// breakdown, DRAM traffic, per-resource busy cycles/task counts) for every
// Table-1 network x scheduler on the Fig. 4 edge config, captured from the
// original polling engine (the PR 1 seed). The event-driven engine — and any
// future rewrite — must reproduce them bit-for-bit: cycle counts exactly,
// energy doubles to the last ulp (the accumulation order is part of the
// contract). Regenerate with tools/gen_golden_engine only when an
// *intentional* model change invalidates the values.
#include <cctype>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dataflow/workloads.h"
#include "schedulers/scheduler.h"
#include "search/tiling_search.h"
#include "sim/hardware_config.h"

namespace mas {
namespace {

struct GoldenRow {
  const char* network;
  int method;
  std::int64_t tiling[4];  // bb, hh, nq, nkv
  std::uint64_t cycles;
  double energy[5];  // dram, l1, l0, mac, vec (pJ)
  std::int64_t dram_read_bytes;
  std::int64_t dram_write_bytes;
  std::vector<std::uint64_t> busy;        // per resource: dma, mac0, vec0, ...
  std::vector<std::uint64_t> task_count;  // same order
};

const std::vector<GoldenRow>& GoldenRows() {
  static const std::vector<GoldenRow> rows = {
#include "golden_engine_table1.inc"
  };
  return rows;
}

// Decode-phase rows (N = 1 query row against a kv_len ∈ {512, 4096} KV
// cache) for every registered scheduler — the serving simulator's regime,
// where a single softmax row per head degenerates the stream pipelines.
const std::vector<GoldenRow>& DecodeGoldenRows() {
  static const std::vector<GoldenRow> rows = {
#include "golden_engine_decode.inc"
  };
  return rows;
}

// Resolves a golden row's network name: Table-1 first, then the decode
// workload inventory the decode rows are generated from.
NetworkWorkload FindGoldenNetwork(const std::string& name) {
  for (const auto& w : Table1Networks()) {
    if (w.name == name) return w;
  }
  for (const auto& w : DecodeWorkloads({512, 4096})) {
    if (w.name == name) return w;
  }
  // mas-lint: allow(error-catalog) stale-golden invariant; regenerate via gen_golden_engine
  MAS_FAIL() << "golden row references unknown network '" << name << "'";
}

void CheckGoldenRow(const GoldenRow& row) {
  const sim::HardwareConfig hw = sim::EdgeSimConfig();
  const sim::EnergyModel em;
  const NetworkWorkload net = FindGoldenNetwork(row.network);
  const auto sched = MakeScheduler(static_cast<Method>(row.method));

  // The offline search must land on the seed's tiling (same lattice, same
  // cycle estimates, same tie-breaks)...
  const TilingConfig tiling = search::AutoTile(*sched, net.shape, hw, em);
  EXPECT_EQ(tiling.bb, row.tiling[0]) << sched->name();
  EXPECT_EQ(tiling.hh, row.tiling[1]) << sched->name();
  EXPECT_EQ(tiling.nq, row.tiling[2]) << sched->name();
  EXPECT_EQ(tiling.nkv, row.tiling[3]) << sched->name();

  // ...and the simulation must reproduce the seed SimResult exactly.
  const sim::SimResult r = sched->Simulate(net.shape, tiling, hw, em);
  EXPECT_EQ(r.cycles, row.cycles);
  EXPECT_EQ(r.energy.dram_pj, row.energy[0]);
  EXPECT_EQ(r.energy.l1_pj, row.energy[1]);
  EXPECT_EQ(r.energy.l0_pj, row.energy[2]);
  EXPECT_EQ(r.energy.mac_pe_pj, row.energy[3]);
  EXPECT_EQ(r.energy.vec_pe_pj, row.energy[4]);
  EXPECT_EQ(r.dram_read_bytes, row.dram_read_bytes);
  EXPECT_EQ(r.dram_write_bytes, row.dram_write_bytes);
  ASSERT_EQ(r.resources.size(), row.busy.size());
  for (std::size_t i = 0; i < row.busy.size(); ++i) {
    EXPECT_EQ(r.resources[i].busy_cycles, row.busy[i]) << r.resources[i].name;
    EXPECT_EQ(r.resources[i].task_count, row.task_count[i]) << r.resources[i].name;
  }

  // The retained polling reference scheduler agrees with the event-driven
  // run on the same schedule (independent cross-check of the rewrite).
  sim::Engine ref_engine(hw);
  ref_engine.set_use_reference_scheduler(true);
  const sim::SimResult ref =
      sched->Simulate(net.shape, tiling, hw, em, /*record_timeline=*/false, &ref_engine);
  EXPECT_EQ(ref.cycles, row.cycles);
  EXPECT_EQ(ref.energy.l1_pj, row.energy[1]);
  EXPECT_EQ(ref.dram_read_bytes, row.dram_read_bytes);
}

class EngineGolden : public testing::TestWithParam<std::size_t> {};

TEST_P(EngineGolden, MatchesSeedEngineBitForBit) { CheckGoldenRow(GoldenRows()[GetParam()]); }

class EngineGoldenDecode : public testing::TestWithParam<std::size_t> {};

TEST_P(EngineGoldenDecode, MatchesPinnedDecodeResult) {
  CheckGoldenRow(DecodeGoldenRows()[GetParam()]);
}

std::string RowName(const GoldenRow& row) {
  std::string name = std::string(row.network) + "_" +
                     MethodName(static_cast<Method>(row.method));
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

std::string GoldenName(const testing::TestParamInfo<std::size_t>& info) {
  return RowName(GoldenRows()[info.index]);
}

std::string DecodeGoldenName(const testing::TestParamInfo<std::size_t>& info) {
  return RowName(DecodeGoldenRows()[info.index]);
}

INSTANTIATE_TEST_SUITE_P(AllNetworksAllSchedulers, EngineGolden,
                         testing::Range<std::size_t>(0, GoldenRows().size()), GoldenName);

INSTANTIATE_TEST_SUITE_P(AllSchedulersDecodeShapes, EngineGoldenDecode,
                         testing::Range<std::size_t>(0, DecodeGoldenRows().size()),
                         DecodeGoldenName);

}  // namespace
}  // namespace mas
