// Property tests for the event-driven engine on randomized task DAGs.
//
// Invariants checked for arbitrary well-formed schedules:
//  * makespan >= critical path length (longest dependency chain);
//  * makespan >= busiest resource's total work;
//  * makespan <= sum of all durations + all DMA setup (full serialization);
//  * every task starts after its dependencies finish (recorded timeline);
//  * per-resource busy cycles equal the sum of that resource's durations;
//  * energy and DRAM traffic are exact sums over tasks;
//  * results are deterministic across runs.
#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/engine.h"
#include "sim/hardware_config.h"

namespace mas::sim {
namespace {

struct RandomDag {
  std::vector<TaskSpec> tasks;
};

RandomDag MakeRandomDag(Rng& rng, int n_tasks, int n_cores) {
  RandomDag dag;
  for (int i = 0; i < n_tasks; ++i) {
    TaskSpec t;
    const int pick = static_cast<int>(rng.NextBelow(3));
    t.resource = pick == 0   ? ResourceKind::kDma
                 : pick == 1 ? ResourceKind::kMac
                             : ResourceKind::kVec;
    t.core = static_cast<int>(rng.NextBelow(static_cast<std::size_t>(n_cores)));
    t.duration = 1 + rng.NextBelow(50);
    t.energy.mac_pe_pj = static_cast<double>(rng.NextBelow(100));
    t.dram_read_bytes = static_cast<std::int64_t>(rng.NextBelow(1000));
    t.name = "t" + std::to_string(i);
    // Up to 3 random backward dependencies.
    const std::size_t deps = rng.NextBelow(4);
    for (std::size_t d = 0; d < deps && i > 0; ++d) {
      t.deps.push_back(static_cast<TaskId>(rng.NextBelow(static_cast<std::size_t>(i))));
    }
    std::sort(t.deps.begin(), t.deps.end());
    t.deps.erase(std::unique(t.deps.begin(), t.deps.end()), t.deps.end());
    dag.tasks.push_back(std::move(t));
  }
  return dag;
}

std::uint64_t CriticalPath(const RandomDag& dag) {
  std::vector<std::uint64_t> finish(dag.tasks.size(), 0);
  for (std::size_t i = 0; i < dag.tasks.size(); ++i) {
    std::uint64_t ready = 0;
    for (TaskId d : dag.tasks[i].deps) {
      ready = std::max(ready, finish[static_cast<std::size_t>(d)]);
    }
    finish[i] = ready + dag.tasks[i].duration;
  }
  return *std::max_element(finish.begin(), finish.end());
}

SimResult RunDag(const RandomDag& dag, bool record = false) {
  HardwareConfig hw = EdgeSimConfig();
  Engine engine(hw, record);
  for (const TaskSpec& t : dag.tasks) engine.AddTask(t);
  return engine.Run();
}

class EngineProperty : public testing::TestWithParam<int> {};

TEST_P(EngineProperty, MakespanBounds) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const RandomDag dag = MakeRandomDag(rng, 60, 2);
  const SimResult r = RunDag(dag);

  EXPECT_GE(r.cycles, CriticalPath(dag));

  std::map<std::pair<int, int>, std::uint64_t> per_resource;
  std::uint64_t total = 0;
  for (const TaskSpec& t : dag.tasks) {
    per_resource[{static_cast<int>(t.resource),
                  t.resource == ResourceKind::kDma ? 0 : t.core}] += t.duration;
    total += t.duration;
  }
  for (const auto& [key, busy] : per_resource) {
    EXPECT_GE(r.cycles, busy);
  }
  EXPECT_LE(r.cycles, total);  // full serialization upper bound
}

TEST_P(EngineProperty, TimelineRespectsDependenciesAndResources) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const RandomDag dag = MakeRandomDag(rng, 60, 2);
  const SimResult r = RunDag(dag, /*record=*/true);
  ASSERT_EQ(r.timeline.size(), dag.tasks.size());

  // Index finish times by task name.
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> span;
  for (const auto& e : r.timeline) span[e.name] = {e.start, e.end};
  for (std::size_t i = 0; i < dag.tasks.size(); ++i) {
    const auto& t = dag.tasks[i];
    for (TaskId d : t.deps) {
      const auto& dep_name = dag.tasks[static_cast<std::size_t>(d)].name;
      EXPECT_GE(span[t.name].first, span[dep_name].second)
          << t.name << " started before dep " << dep_name;
    }
  }

  // No two tasks on the same (resource, core) overlap.
  std::map<std::pair<int, int>, std::vector<std::pair<std::uint64_t, std::uint64_t>>> lanes;
  for (const auto& e : r.timeline) {
    lanes[{static_cast<int>(e.resource), e.resource == ResourceKind::kDma ? 0 : e.core}]
        .push_back({e.start, e.end});
  }
  for (auto& [key, spans] : lanes) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i].first, spans[i - 1].second) << "overlap on lane";
    }
  }
}

TEST_P(EngineProperty, BusyAndTrafficAccountingExact) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  const RandomDag dag = MakeRandomDag(rng, 40, 2);
  const SimResult r = RunDag(dag);

  std::uint64_t busy_expected = 0;
  std::int64_t reads = 0;
  double energy = 0.0;
  for (const TaskSpec& t : dag.tasks) {
    busy_expected += t.duration;
    reads += t.dram_read_bytes;
    energy += t.energy.mac_pe_pj;
  }
  std::uint64_t busy_measured = 0;
  for (const auto& res : r.resources) busy_measured += res.busy_cycles;
  EXPECT_EQ(busy_measured, busy_expected);
  EXPECT_EQ(r.dram_read_bytes, reads);
  EXPECT_DOUBLE_EQ(r.energy.mac_pe_pj, energy);
}

TEST_P(EngineProperty, Deterministic) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 3000);
  const RandomDag dag = MakeRandomDag(rng, 50, 2);
  const SimResult a = RunDag(dag);
  const SimResult b = RunDag(dag);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.dram_read_bytes, b.dram_read_bytes);
}

TEST_P(EngineProperty, EventRunMatchesPollingReference) {
  // The dependency-counter scheduler must agree with the retained seed
  // polling scheduler on arbitrary DAGs — cycles, busy stats, traffic,
  // energy (bit-equal doubles: same accumulation order) and the timeline.
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 4000);
  const RandomDag dag = MakeRandomDag(rng, 80, 2);
  const HardwareConfig hw = EdgeSimConfig();

  Engine fast(hw, /*record_timeline=*/true);
  for (const TaskSpec& t : dag.tasks) fast.AddTask(t);
  const SimResult a = fast.Run();

  Engine reference(hw, /*record_timeline=*/true);
  reference.set_use_reference_scheduler(true);
  for (const TaskSpec& t : dag.tasks) reference.AddTask(t);
  const SimResult b = reference.Run();

  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.dram_read_bytes, b.dram_read_bytes);
  EXPECT_EQ(a.energy.mac_pe_pj, b.energy.mac_pe_pj);
  ASSERT_EQ(a.resources.size(), b.resources.size());
  for (std::size_t i = 0; i < a.resources.size(); ++i) {
    EXPECT_EQ(a.resources[i].busy_cycles, b.resources[i].busy_cycles);
    EXPECT_EQ(a.resources[i].task_count, b.resources[i].task_count);
  }
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].name, b.timeline[i].name);
    EXPECT_EQ(a.timeline[i].start, b.timeline[i].start);
    EXPECT_EQ(a.timeline[i].end, b.timeline[i].end);
  }
}

TEST_P(EngineProperty, ResetReuseIsIdenticalToFreshEngine) {
  // One engine rebuilt via Reset() across many different DAGs must behave
  // exactly like a fresh engine each time. This also pins the hoisted DMA
  // descriptor-ring scratch (the seed reallocated the rings every
  // arbitration pass; the reused engine must clear, not accumulate, them).
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 5000);
  const HardwareConfig hw = EdgeSimConfig();
  Engine reused(hw);
  for (int round = 0; round < 4; ++round) {
    const RandomDag dag = MakeRandomDag(rng, 50 + round * 13, 2);
    if (round > 0) reused.Reset();
    for (const TaskSpec& t : dag.tasks) reused.AddTask(t);
    const SimResult via_reuse = reused.Run();
    const SimResult via_fresh = RunDag(dag);
    EXPECT_EQ(via_reuse.cycles, via_fresh.cycles);
    EXPECT_EQ(via_reuse.dram_read_bytes, via_fresh.dram_read_bytes);
    EXPECT_EQ(via_reuse.energy.mac_pe_pj, via_fresh.energy.mac_pe_pj);
    ASSERT_EQ(via_reuse.resources.size(), via_fresh.resources.size());
    for (std::size_t i = 0; i < via_reuse.resources.size(); ++i) {
      EXPECT_EQ(via_reuse.resources[i].busy_cycles, via_fresh.resources[i].busy_cycles);
      EXPECT_EQ(via_reuse.resources[i].task_count, via_fresh.resources[i].task_count);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineProperty, testing::Range(1, 13));

TEST(EngineDma, OutOfOrderDmaDoesNotBlockReadyTransfers) {
  // A blocked head transfer (producer on MAC still running) must not delay a
  // younger independent transfer — the per-core descriptor rings skip it.
  Engine engine(EdgeSimConfig());
  TaskSpec slow_mac;
  slow_mac.resource = ResourceKind::kMac;
  slow_mac.duration = 1000;
  const TaskId mac = engine.AddTask(slow_mac);
  TaskSpec blocked;
  blocked.resource = ResourceKind::kDma;
  blocked.duration = 10;
  blocked.deps = {mac};
  engine.AddTask(blocked);
  TaskSpec ready;
  ready.resource = ResourceKind::kDma;
  ready.duration = 10;
  const TaskId free_xfer = engine.AddTask(ready);
  TaskSpec consumer;
  consumer.resource = ResourceKind::kVec;
  consumer.duration = 5;
  consumer.deps = {free_xfer};
  engine.AddTask(consumer);
  const SimResult r = engine.Run(); // blocked runs [1000,1010)
  EXPECT_EQ(r.cycles, 1010u);       // not 1015: consumer ran at [10,15)
}

TEST(EngineDma, RoundRobinSharesBusAcrossCores) {
  // Two cores each enqueue a long prefetch stream; core 1's first transfer
  // must start within ~one transfer of cycle 0, not after core 0's stream.
  Engine engine(EdgeSimConfig(), /*record_timeline=*/true);
  for (int core = 0; core < 2; ++core) {
    for (int i = 0; i < 10; ++i) {
      TaskSpec t;
      t.resource = ResourceKind::kDma;
      t.core = core;
      t.duration = 100;
      t.name = "c" + std::to_string(core) + "_x" + std::to_string(i);
      engine.AddTask(t);
    }
  }
  const SimResult r = engine.Run();
  std::uint64_t core1_first = ~0ull;
  for (const auto& e : r.timeline) {
    if (e.name == "c1_x0") core1_first = e.start;
  }
  EXPECT_LE(core1_first, 100u);
}

}  // namespace
}  // namespace mas::sim
