// Cross-attention (N_kv != N) and autoregressive-decode (N = 1) coverage.
//
// The paper evaluates square self-attention; this library additionally
// supports rectangular score matrices: SD-UNet text conditioning
// (N_kv = 77 prompt tokens) and decode against a KV cache (one query row).
// These tests pin down (a) the shape accessors, (b) functional correctness
// of every scheduler's twin on rectangular shapes, and (c) simulator
// invariants that must continue to hold when K/V and Q lengths diverge.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dataflow/workloads.h"
#include "kernels/attention_kernels.h"
#include "schedulers/registry.h"
#include "schedulers/scheduler.h"
#include "search/tiling_search.h"
#include "sim/hardware_config.h"
#include "tensor/tensor.h"

namespace mas {
namespace {

sim::HardwareConfig Hw() { return sim::EdgeSimConfig(); }
sim::EnergyModel Em() { return sim::EnergyModel{}; }

TEST(CrossShape, KvDefaultsToSeqLen) {
  const AttentionShape self{"self", 1, 4, 128, 32};
  EXPECT_EQ(self.kv(), 128);
  EXPECT_EQ(self.TotalMacs(), 2 * 4 * 128 * 128 * 32);
  EXPECT_EQ(self.ScoreElements(), 4 * 128 * 128);
}

TEST(CrossShape, ExplicitKvLen) {
  const AttentionShape cross{"cross", 1, 4, 128, 32, 77};
  EXPECT_EQ(cross.kv(), 77);
  EXPECT_EQ(cross.TotalMacs(), 2 * 4 * 128 * 77 * 32);
  EXPECT_EQ(cross.ScoreElements(), 4 * 128 * 77);
  EXPECT_EQ(cross.OperandBytes(2), 4 * 128 * 32 * 2);   // Q / O side
  EXPECT_EQ(cross.KvOperandBytes(2), 4 * 77 * 32 * 2);  // K / V side
}

TEST(CrossShape, ToStringMentionsKvOnlyWhenSet) {
  const AttentionShape self{"a", 1, 2, 64, 16};
  const AttentionShape cross{"a", 1, 2, 64, 16, 48};
  EXPECT_EQ(self.ToString().find("Nkv"), std::string::npos);
  EXPECT_NE(cross.ToString().find("Nkv=48"), std::string::npos);
}

TEST(CrossShape, TilingValidatesAgainstKv) {
  const AttentionShape cross{"cross", 1, 2, 128, 16, 48};
  TilingConfig ok{1, 1, 64, 48};
  ok.Validate(cross);  // nkv up to kv() is legal
  const TilingConfig bad{1, 1, 64, 64};  // nkv beyond kv()
  EXPECT_THROW(bad.Validate(cross), Error);
}

TEST(CrossShape, KvBlockCountUsesKvLen) {
  const AttentionShape cross{"cross", 1, 2, 128, 16, 80};
  const TilingConfig tiling{1, 1, 64, 32};
  EXPECT_EQ(tiling.KvBlocks(cross), 3);  // ceil(80/32)
  EXPECT_EQ(tiling.RowBlocks(cross), 2 * 2);
}

TEST(CrossKernels, ReferenceAttentionRectangular) {
  Rng rng(7);
  const std::int64_t nq = 24, nkv = 10, e = 8;
  TensorF q(1, 2, nq, e), k(1, 2, nkv, e), v(1, 2, nkv, e);
  FillUniform(q, rng);
  FillUniform(k, rng);
  FillUniform(v, rng);
  const TensorF o = ReferenceAttention(q, k, v);
  EXPECT_EQ(o.shape(), (Shape4{1, 2, nq, e}));
  // Softmax rows sum to one: each output row is a convex combination of V
  // rows, so it stays within V's column-wise min/max envelope.
  for (std::int64_t h = 0; h < 2; ++h)
    for (std::int64_t col = 0; col < e; ++col) {
      float lo = v.at(0, h, 0, col), hi = lo;
      for (std::int64_t r = 1; r < nkv; ++r) {
        lo = std::min(lo, v.at(0, h, r, col));
        hi = std::max(hi, v.at(0, h, r, col));
      }
      for (std::int64_t r = 0; r < nq; ++r) {
        EXPECT_GE(o.at(0, h, r, col), lo - 1e-5f);
        EXPECT_LE(o.at(0, h, r, col), hi + 1e-5f);
      }
    }
}

// Golden check for every scheduler twin on a rectangular (cross-attention)
// shape, including non-divisor tilings.
class CrossGolden : public testing::TestWithParam<Method> {};

TEST_P(CrossGolden, MatchesReferenceOnCrossAttention) {
  Rng rng(11);
  const std::int64_t nq = 40, nkv = 18, e = 8;
  TensorF q(1, 3, nq, e), k(1, 3, nkv, e), v(1, 3, nkv, e);
  FillUniform(q, rng);
  FillUniform(k, rng);
  FillUniform(v, rng);
  const TensorF ref = ReferenceAttention(q, k, v);
  const auto sched = MakeScheduler(GetParam());
  const TensorF o = sched->Execute(q, k, v, TilingConfig{1, 2, 16, 7});
  EXPECT_LT(MaxAbsDiff(o, ref), 2e-5) << sched->name();
}

TEST_P(CrossGolden, MatchesReferenceOnDecode) {
  Rng rng(13);
  const std::int64_t ctx = 50, e = 16;
  TensorF q(1, 4, 1, e), k(1, 4, ctx, e), v(1, 4, ctx, e);
  FillUniform(q, rng);
  FillUniform(k, rng);
  FillUniform(v, rng);
  const TensorF ref = ReferenceAttention(q, k, v);
  const auto sched = MakeScheduler(GetParam());
  const TensorF o = sched->Execute(q, k, v, TilingConfig{1, 2, 1, 16});
  EXPECT_LT(MaxAbsDiff(o, ref), 2e-5) << sched->name();
}

INSTANTIATE_TEST_SUITE_P(AllMethods, CrossGolden, testing::ValuesIn(AllMethods()),
                         [](const testing::TestParamInfo<Method>& info) {
                           std::string name = MethodName(info.param);
                           std::string out;
                           for (char ch : name) {
                             if (std::isalnum(static_cast<unsigned char>(ch))) out += ch;
                           }
                           return out;
                         });

TEST(CrossSim, AllMethodsSimulateCrossAttention) {
  const AttentionShape shape{"xattn", 1, 4, 1024, 64, 77};
  for (Method m : AllMethods()) {
    const auto sched = MakeScheduler(m);
    const TilingConfig tiling = search::AutoTile(*sched, shape, Hw(), Em());
    const auto r = sched->Simulate(shape, tiling, Hw(), Em());
    EXPECT_GT(r.cycles, 0u) << sched->name();
    EXPECT_LE(r.peak_l1_bytes, Hw().l1_bytes) << sched->name();
  }
}

TEST(CrossSim, DramWritesAreQuerySided) {
  // O is (B,H,N,E) regardless of kv_len: fused methods write exactly that.
  const AttentionShape shape{"xattn", 1, 4, 1024, 64, 77};
  const auto mas = MakeScheduler(Method::kMas);
  const auto r =
      mas->Simulate(shape, search::AutoTile(*mas, shape, Hw(), Em()), Hw(), Em());
  EXPECT_EQ(r.dram_write_bytes, shape.OperandBytes(Hw().element_bytes));
}

TEST(CrossSim, ComputeFloorScalesWithKv) {
  // Halving kv_len halves the MAC work; the simulated cycles of the compute-
  // bound fused methods must drop accordingly (within scheduling slack).
  const AttentionShape full{"x", 1, 8, 512, 64, 512};
  const AttentionShape half{"x", 1, 8, 512, 64, 256};
  const auto mas = MakeScheduler(Method::kMas);
  const auto r_full =
      mas->Simulate(full, search::AutoTile(*mas, full, Hw(), Em()), Hw(), Em());
  const auto r_half =
      mas->Simulate(half, search::AutoTile(*mas, half, Hw(), Em()), Hw(), Em());
  const double ratio = static_cast<double>(r_full.cycles) / r_half.cycles;
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 2.6);
}

TEST(CrossSim, DecodeWorkloadsSimulateAcrossContexts) {
  for (const auto& w : DecodeWorkloads({256, 1024, 4096})) {
    const auto mas = MakeScheduler(Method::kMas);
    const TilingConfig tiling = search::AutoTile(*mas, w.shape, Hw(), Em());
    const auto r = mas->Simulate(w.shape, tiling, Hw(), Em());
    EXPECT_GT(r.cycles, 0u) << w.name;
    // Decode writes one row per head.
    EXPECT_EQ(r.dram_write_bytes, w.shape.OperandBytes(Hw().element_bytes)) << w.name;
  }
}

// Property coverage for the serving simulator's decode regime: every
// registered scheduler (ablations included) must schedule the N = 1,
// kv_len ∈ {512, 4096} shapes within the hardware envelope. The exact
// SimResults are pinned in tests/golden_engine_decode.inc.
TEST(CrossSim, AllRegisteredSchedulersHandleDecodeShapes) {
  for (const auto& w : DecodeWorkloads({512, 4096})) {
    for (const SchedulerInfo& info : SchedulerRegistry::Instance().List()) {
      const auto sched = SchedulerRegistry::Instance().Create(info.name);
      const TilingConfig tiling = search::AutoTile(*sched, w.shape, Hw(), Em());
      const auto r = sched->Simulate(w.shape, tiling, Hw(), Em());
      EXPECT_GT(r.cycles, 0u) << info.name << " " << w.name;
      EXPECT_LE(r.peak_l1_bytes, Hw().l1_bytes) << info.name << " " << w.name;
      // Every method writes at least O (one row per head); the fully fused
      // dataflows write exactly that, while Layer-Wise / Soft-Pipe also
      // round-trip intermediate score matrices through DRAM.
      const std::int64_t o_bytes = w.shape.OperandBytes(Hw().element_bytes);
      if (info.method == Method::kLayerWise || info.method == Method::kSoftPipe) {
        EXPECT_GT(r.dram_write_bytes, o_bytes) << info.name << " " << w.name;
      } else {
        EXPECT_EQ(r.dram_write_bytes, o_bytes) << info.name << " " << w.name;
      }
      // At least the whole KV cache must stream in from DRAM once.
      EXPECT_GE(r.dram_read_bytes, 2 * w.shape.KvOperandBytes(Hw().element_bytes))
          << info.name << " " << w.name;
    }
  }
}

TEST(CrossSim, DecodeIsDmaBound) {
  // One query row against a long KV cache: arithmetic intensity collapses to
  // O(1) MACs per K/V byte, so the DMA channel, not the MAC mesh, must be the
  // bottleneck resource.
  const auto w = DecodeWorkloads({4096}).front();
  const auto mas = MakeScheduler(Method::kMas);
  const auto r =
      mas->Simulate(w.shape, search::AutoTile(*mas, w.shape, Hw(), Em()), Hw(), Em());
  EXPECT_GT(static_cast<double>(r.BusyCycles(sim::ResourceKind::kDma)),
            0.5 * static_cast<double>(r.cycles));
}

TEST(CrossWorkloads, SdCrossAttentionInventory) {
  const auto units = SdUnetCrossAttentionUnits();
  int total = 0;
  for (const auto& u : units) {
    EXPECT_EQ(u.shape.kv(), 77) << u.shape.name;
    EXPECT_GE(u.shape.seq_len, 64) << "latent side spans the resolution pyramid";
    total += u.count;
  }
  // At the higher resolutions the latent (query) side dominates the prompt.
  EXPECT_GT(units.front().shape.seq_len, units.front().shape.kv());
  EXPECT_EQ(total, 15);  // one cross-attention per transformer block
}

TEST(CrossWorkloads, DecodeShapesAreSingleRow) {
  for (const auto& w : DecodeWorkloads({128, 512})) {
    EXPECT_EQ(w.shape.seq_len, 1);
    EXPECT_GT(w.shape.kv(), 1);
  }
}

}  // namespace
}  // namespace mas
