// mas::Planner facade tests: plan identity, JSON round-trips (including the
// error paths), warm starts with zero search evaluations, and equivalence
// with the legacy per-call tuning path.
#include "planner/planner.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/json_reader.h"
#include "common/status.h"
#include "schedulers/registry.h"
#include "search/tiling_search.h"
#include "sim/hardware_config.h"

namespace mas {
namespace {

AttentionShape TinyShape() { return AttentionShape{"tiny", 1, 2, 64, 16}; }

sim::HardwareConfig Hw() { return sim::EdgeSimConfig(); }

TEST(PlanKeyTest, DistinguishesEveryRequestComponent) {
  const AttentionShape shape = TinyShape();
  const std::string base = PlanKey("FLAT", shape, Hw(), TilingPolicy::kAutoTile);

  EXPECT_NE(base, PlanKey("MAS-Attention", shape, Hw(), TilingPolicy::kAutoTile));
  EXPECT_NE(base, PlanKey("FLAT", shape, Hw(), TilingPolicy::kPaperProtocol));
  EXPECT_NE(base, PlanKey("FLAT", shape, Hw(), TilingConfig{1, 1, 16, 16}));

  AttentionShape renamed = shape;
  renamed.name = "display_only";
  EXPECT_EQ(base, PlanKey("FLAT", renamed, Hw(), TilingPolicy::kAutoTile))
      << "display name must not affect identity";

  sim::HardwareConfig smaller = Hw();
  smaller.l1_bytes /= 2;
  EXPECT_NE(base, PlanKey("FLAT", shape, smaller, TilingPolicy::kAutoTile));
}

TEST(PlannerTest, PlanMatchesLegacyAutoTile) {
  Planner planner;
  const AttentionShape shape = TinyShape();
  for (const char* method : {"FLAT", "MAS-Attention"}) {
    const TuningPlan plan = planner.Plan(shape, method, Hw());
    const auto sched = SchedulerRegistry::Instance().Create(method);
    const TilingConfig legacy = search::AutoTile(*sched, shape, Hw(), sim::EnergyModel{});
    EXPECT_EQ(plan.tiling, legacy) << method;
    EXPECT_EQ(plan.method, method);
    EXPECT_EQ(plan.strategy, "grid");
    EXPECT_GT(plan.evaluations, 0) << method;
    // Predicted cycles match the actual simulation of the plan.
    const sim::SimResult sim = planner.Simulate(plan, Hw());
    EXPECT_EQ(plan.predicted_cycles, static_cast<double>(sim.cycles)) << method;
    // And the facade's simulation equals the direct scheduler call.
    const sim::SimResult direct =
        sched->Simulate(shape, plan.tiling, Hw(), sim::EnergyModel{});
    EXPECT_EQ(sim.cycles, direct.cycles);
    EXPECT_EQ(sim.energy.dram_pj, direct.energy.dram_pj);
    EXPECT_EQ(sim.dram_read_bytes, direct.dram_read_bytes);
  }
}

TEST(PlannerTest, SecondPlanIsAStoreHitWithZeroNewEvaluations) {
  Planner planner;
  const TuningPlan first = planner.Plan(TinyShape(), "MAS-Attention", Hw());
  const std::int64_t evals = planner.search_evaluations();
  EXPECT_GT(evals, 0);
  EXPECT_EQ(planner.plans_tuned(), 1);

  const TuningPlan second = planner.Plan(TinyShape(), "MAS-Attention", Hw());
  EXPECT_EQ(planner.search_evaluations(), evals) << "hit must not search";
  EXPECT_EQ(planner.plans_reused(), 1);
  EXPECT_EQ(second.tiling, first.tiling);
  EXPECT_EQ(second.key, first.key);
}

TEST(PlannerTest, CompatEnumOverloadMatchesStringPath) {
  Planner a;
  Planner b;
  const TuningPlan by_name = a.Plan(TinyShape(), "FLAT", Hw());
  const TuningPlan by_enum = b.Plan(TinyShape(), Method::kFlat, Hw());
  EXPECT_EQ(by_name.key, by_enum.key);
  EXPECT_EQ(by_name.tiling, by_enum.tiling);
}

TEST(PlannerTest, UnknownMethodErrorListsTheRegistry) {
  Planner planner;
  try {
    planner.Plan(TinyShape(), "NoSuchDataflow", Hw());
    FAIL() << "expected an Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown method 'NoSuchDataflow'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'FLAT'"), std::string::npos) << msg;
  }
}

TEST(PlannerTest, PlanFixedValidatesAndRecordsProvenance) {
  Planner planner;
  const TuningPlan plan =
      planner.PlanFixed(TinyShape(), "MAS-Attention", Hw(), TilingConfig{1, 1, 16, 16});
  EXPECT_EQ(plan.strategy, "fixed");
  EXPECT_EQ(plan.evaluations, 0);
  EXPECT_EQ(plan.tiling, (TilingConfig{1, 1, 16, 16}));

  // Out-of-range tiling: Validate() fires.
  EXPECT_THROW(
      planner.PlanFixed(TinyShape(), "MAS-Attention", Hw(), TilingConfig{1, 1, 128, 16}),
      Error);
  // In-range but infeasible (L1 too small): Fits() fires.
  sim::HardwareConfig tight = Hw();
  tight.l1_bytes = 64;
  try {
    planner.PlanFixed(TinyShape(), "MAS-Attention", tight, TilingConfig{1, 2, 64, 64});
    FAIL() << "expected an Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("does not fit"), std::string::npos) << e.what();
  }
}

TEST(PlannerTest, PaperProtocolUsesManualFuseMaxTiling) {
  Planner planner;
  const AttentionShape shape{"proto", 1, 2, 128, 32};
  const TuningPlan plan =
      planner.Plan(shape, "FuseMax", Hw(), TilingPolicy::kPaperProtocol);
  EXPECT_EQ(plan.strategy, "manual");
  EXPECT_EQ(plan.evaluations, 0);
  const sim::HardwareConfig hw = Hw();
  const auto& cc = hw.cores.front();
  EXPECT_EQ(plan.tiling.nq, std::min(cc.mac_rows, shape.seq_len));
  EXPECT_EQ(plan.tiling.nkv, std::min(cc.mac_cols, shape.kv()));
}

TEST(TuningPlanJson, RoundTripsExactly) {
  Planner planner;
  planner.Plan(TinyShape(), "MAS-Attention", Hw());
  planner.Plan(TinyShape(), "FLAT", Hw());
  planner.PlanFixed(TinyShape(), "FLAT", Hw(), TilingConfig{1, 1, 16, 16});

  const std::string json = planner.store().ToJson();
  const PlanStore loaded = PlanStore::FromJson(json);
  EXPECT_EQ(loaded.size(), planner.store().size());
  // Byte-identical re-serialization: the determinism contract for the
  // --plan-cache CI smoke.
  EXPECT_EQ(loaded.ToJson(), json);

  // Field-level equality through the round trip.
  const TuningPlan original = planner.Plan(TinyShape(), "MAS-Attention", Hw());
  const TuningPlan* reloaded = loaded.Find(original.key);
  ASSERT_NE(reloaded, nullptr);
  EXPECT_EQ(reloaded->method, original.method);
  EXPECT_EQ(reloaded->tiling, original.tiling);
  EXPECT_EQ(reloaded->predicted_cycles, original.predicted_cycles);
  EXPECT_EQ(reloaded->strategy, original.strategy);
  EXPECT_EQ(reloaded->seed, original.seed);
  EXPECT_EQ(reloaded->evaluations, original.evaluations);
  EXPECT_EQ(reloaded->shape.name, original.shape.name);
  EXPECT_EQ(reloaded->shape.kv_len, original.shape.kv_len);
}

TEST(TuningPlanJson, RejectsTruncatedAndMismatchedInput) {
  Planner planner;
  planner.Plan(TinyShape(), "FLAT", Hw());
  const std::string json = planner.store().ToJson();

  // Truncations at arbitrary cut points must throw, never crash or
  // half-load.
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, json.size() / 4,
                          json.size() / 2, json.size() - 2}) {
    EXPECT_THROW(PlanStore::FromJson(json.substr(0, cut)), Error) << "cut=" << cut;
  }

  // Wrong version.
  EXPECT_THROW(PlanStore::FromJson(R"({"version":2,"plans":[]})"), Error);
  // Missing fields.
  EXPECT_THROW(PlanStore::FromJson(R"({"plans":[]})"), Error);
  EXPECT_THROW(PlanStore::FromJson(R"({"version":1})"), Error);
  EXPECT_THROW(PlanStore::FromJson(R"({"version":1,"plans":[{}]})"), Error);
  // Type mismatches.
  EXPECT_THROW(PlanStore::FromJson(R"({"version":"1","plans":[]})"), Error);
  EXPECT_THROW(PlanStore::FromJson(R"({"version":1,"plans":{}})"), Error);
  // A structurally complete plan with an invalid tiling (nq > seq_len).
  std::string bad = json;
  const std::string needle = "\"nq\":";
  const std::size_t pos = bad.find(needle);
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos, needle.size() + 2, "\"nq\":9999");
  EXPECT_THROW(PlanStore::FromJson(bad), Error);
}

TEST(PlanStoreFile, PersistsAcrossPlannersWithZeroWarmEvaluations) {
  const std::string path = ::testing::TempDir() + "/mas_plans_test.json";
  std::remove(path.c_str());

  TuningPlan cold_plan;
  std::string cold_json;
  {
    Planner cold;
    EXPECT_FALSE(cold.store().LoadFile(path)) << "missing file is a no-op";
    cold_plan = cold.Plan(TinyShape(), "MAS-Attention", Hw());
    EXPECT_GT(cold.search_evaluations(), 0);
    cold.store().SaveFile(path);
    cold_json = cold.store().ToJson();
  }
  {
    Planner warm;
    EXPECT_TRUE(warm.store().LoadFile(path));
    const TuningPlan plan = warm.Plan(TinyShape(), "MAS-Attention", Hw());
    EXPECT_EQ(warm.search_evaluations(), 0) << "warm start must not search";
    EXPECT_EQ(warm.plans_reused(), 1);
    EXPECT_EQ(warm.plans_tuned(), 0);
    EXPECT_EQ(plan.tiling, cold_plan.tiling);
    EXPECT_EQ(plan.predicted_cycles, cold_plan.predicted_cycles);
    // Saving the reloaded store reproduces the file byte-for-byte.
    EXPECT_EQ(warm.store().ToJson(), cold_json);
  }
  std::remove(path.c_str());
}

TEST(PlannerTest, DifferentSearchSpecsDoNotAliasInTheStore) {
  // A store warmed under one spec must not satisfy a planner configured
  // with a different strategy/budget — the stale plan would silently
  // override the requested search.
  Planner grid_planner;  // default: AutoTile coarse grid
  const TuningPlan grid_plan = grid_planner.Plan(TinyShape(), "MAS-Attention", Hw());

  PlannerOptions mcts_options;
  mcts_options.spec.strategy = "mcts";
  mcts_options.spec.iterations = 32;
  mcts_options.spec.seed = 3;
  Planner mcts_planner(sim::EnergyModel{}, mcts_options);
  mcts_planner.store() = PlanStore::FromJson(grid_planner.store().ToJson());

  const TuningPlan mcts_plan = mcts_planner.Plan(TinyShape(), "MAS-Attention", Hw());
  EXPECT_EQ(mcts_planner.plans_tuned(), 1) << "warm grid plan must not satisfy mcts";
  EXPECT_GT(mcts_planner.search_evaluations(), 0);
  EXPECT_NE(mcts_plan.key, grid_plan.key);
  EXPECT_EQ(mcts_plan.strategy, "mcts");
  EXPECT_EQ(mcts_planner.store().size(), 2u);

  // Same spec, fresh planner: the warm path still works.
  Planner warm;
  warm.store() = PlanStore::FromJson(grid_planner.store().ToJson());
  warm.Plan(TinyShape(), "MAS-Attention", Hw());
  EXPECT_EQ(warm.plans_tuned(), 0);
  EXPECT_EQ(warm.search_evaluations(), 0);
}

TEST(TuningPlanJson, RejectsKeyFieldMismatch) {
  Planner planner;
  planner.Plan(TinyShape(), "FLAT", Hw());
  const std::string json = planner.store().ToJson();

  // Tamper the payload method so it disagrees with the key prefix.
  std::string tampered = json;
  const std::string needle = "\"method\":\"FLAT\"";
  const std::size_t pos = tampered.find(needle);
  ASSERT_NE(pos, std::string::npos);
  tampered.replace(pos, needle.size(), "\"method\":\"TileFlow\"");
  EXPECT_THROW(PlanStore::FromJson(tampered), Error);
}

TEST(PlannerTest, SharedAcrossThreadsViaSweepRunnerSemantics) {
  // Two concurrent Plan() calls for distinct keys must both land in the
  // store; exercised through the planner directly (the sweep runner adds a
  // thread pool on top).
  Planner planner;
  const AttentionShape a = TinyShape();
  AttentionShape b = TinyShape();
  b.name = "tiny2";
  b.heads = 4;
  planner.Plan(a, "FLAT", Hw());
  planner.Plan(b, "FLAT", Hw());
  EXPECT_EQ(planner.store().size(), 2u);
  EXPECT_EQ(planner.plans_tuned(), 2);
}

}  // namespace
}  // namespace mas
