// fp16 end-to-end accuracy: the paper's real-hardware claim is that
// MAS-Attention accelerates attention "without affecting model output
// accuracy" — i.e. the schedule change introduces no numerical difference
// beyond what fp16 storage itself costs. These tests quantize Q/K/V to
// fp16 (the NPU's storage format, §5.6), run every scheduler's functional
// twin in fp32 compute over the quantized inputs, and check that (a) all
// schedulers agree with each other bit-for-bit-in-tolerance, and (b) the
// fp16-storage error against full-fp32 inputs stays within the expected
// half-precision envelope.
#include <cmath>

#include <gtest/gtest.h>

#include "common/fp16.h"
#include "common/rng.h"
#include "kernels/attention_kernels.h"
#include "schedulers/scheduler.h"
#include "tensor/tensor.h"

namespace mas {
namespace {

// Quantizes through fp16 storage: float -> binary16 -> float.
TensorF QuantizeFp16(const TensorF& t) {
  TensorF out(t.shape());
  for (std::int64_t i = 0; i < t.elements(); ++i) {
    out.data()[i] = Fp16(t.data()[i]).ToFloat();
  }
  return out;
}

struct QkvSet {
  TensorF q, k, v;
  QkvSet(std::int64_t n, std::int64_t e, std::uint64_t seed)
      : q(1, 2, n, e), k(1, 2, n, e), v(1, 2, n, e) {
    Rng rng(seed);
    FillUniform(q, rng);
    FillUniform(k, rng);
    FillUniform(v, rng);
  }
};

TEST(Fp16Accuracy, QuantizationRoundTripErrorBounded) {
  // For |x| < 2 the fp16 quantization step is at most 2^-10 (one ulp at the
  // binade top); round-to-nearest halves it.
  Rng rng(23);
  TensorF t(1, 1, 64, 64);
  FillUniform(t, rng, -2.0f, 2.0f);
  const TensorF qt = QuantizeFp16(t);
  EXPECT_LT(MaxAbsDiff(t, qt), 1.0 / 1024.0);
}

TEST(Fp16Accuracy, AllSchedulersAgreeOnFp16Inputs) {
  // The golden-data check of §5.1 under fp16 storage: every dataflow
  // computes the same O from the same quantized inputs.
  QkvSet s(48, 16, 31);
  const TensorF q = QuantizeFp16(s.q), k = QuantizeFp16(s.k), v = QuantizeFp16(s.v);
  const TensorF ref = ReferenceAttention(q, k, v);
  for (Method m : AllMethods()) {
    const auto sched = MakeScheduler(m);
    const TensorF o = sched->Execute(q, k, v, TilingConfig{1, 1, 16, 16});
    EXPECT_LT(MaxAbsDiff(o, ref), 2e-5) << sched->name();
  }
}

TEST(Fp16Accuracy, StorageErrorWithinHalfPrecisionEnvelope) {
  // End-to-end: attention over fp16-stored inputs vs full fp32 inputs.
  // Softmax is contraction-friendly (convex weights), so the output error
  // stays within a small multiple of the input quantization step.
  QkvSet s(64, 32, 37);
  const TensorF o_fp32 = ReferenceAttention(s.q, s.k, s.v);
  const TensorF o_fp16 =
      ReferenceAttention(QuantizeFp16(s.q), QuantizeFp16(s.k), QuantizeFp16(s.v));
  const double err = MaxAbsDiff(o_fp32, o_fp16);
  EXPECT_LT(err, 0.05);   // far below any task-level accuracy effect
  EXPECT_GT(err, 0.0);    // and the quantization is actually exercised
}

TEST(Fp16Accuracy, ScheduleChangeAddsNoErrorOnTopOfQuantization) {
  // The claim, directly: |MAS(fp16 in) - reference(fp16 in)| is tile-order
  // rounding only (1e-5 class), orders of magnitude below the fp16 storage
  // error itself — the schedule does not affect accuracy.
  QkvSet s(96, 32, 41);
  const TensorF q = QuantizeFp16(s.q), k = QuantizeFp16(s.k), v = QuantizeFp16(s.v);
  const auto mas = MakeScheduler(Method::kMas);
  const TensorF o_mas = mas->Execute(q, k, v, TilingConfig{1, 1, 24, 32});
  const TensorF ref = ReferenceAttention(q, k, v);
  const double schedule_err = MaxAbsDiff(o_mas, ref);
  const double storage_err = MaxAbsDiff(ReferenceAttention(s.q, s.k, s.v), ref);
  EXPECT_LT(schedule_err, 2e-5);
  EXPECT_GT(storage_err, 10.0 * schedule_err);
}

TEST(Fp16Accuracy, Fp16TensorTypeStoresAndRecovers) {
  // TensorH (Tensor<Fp16>) round-trips values through real fp16 storage.
  Rng rng(43);
  TensorF src(1, 1, 8, 8);
  FillUniform(src, rng);
  TensorH half(src.shape());
  for (std::int64_t i = 0; i < src.elements(); ++i) half.data()[i] = Fp16(src.data()[i]);
  TensorF back(src.shape());
  for (std::int64_t i = 0; i < src.elements(); ++i) back.data()[i] = half.data()[i].ToFloat();
  EXPECT_LT(MaxAbsDiff(src, back), 1.0 / 1024.0);
}

}  // namespace
}  // namespace mas
