#include "search/tiling_search.h"

#include <gtest/gtest.h>

#include "dataflow/workloads.h"
#include "schedulers/scheduler.h"
#include "sim/hardware_config.h"

namespace mas::search {
namespace {

sim::HardwareConfig Hw() { return sim::EdgeSimConfig(); }
sim::EnergyModel Em() { return sim::EnergyModel{}; }

AttentionShape SmallShape() { return AttentionShape{"small", 1, 4, 128, 32}; }

TEST(TilingProblem, CandidateListsCoverDims) {
  const auto mas = MakeScheduler(Method::kMas);
  const sim::HardwareConfig hw = Hw();
  const sim::EnergyModel em = Em();
  TilingProblem problem(*mas, SmallShape(), hw, em);
  EXPECT_EQ(problem.bb_candidates().size(), 1u);  // batch 1
  EXPECT_FALSE(problem.hh_candidates().empty());
  EXPECT_EQ(problem.nq_candidates().back(), 128);
  EXPECT_EQ(problem.nkv_candidates().front(), 1);
}

TEST(TilingProblem, EvaluateMemoizes) {
  const auto mas = MakeScheduler(Method::kMas);
  const sim::HardwareConfig hw = Hw();
  const sim::EnergyModel em = Em();
  TilingProblem problem(*mas, SmallShape(), hw, em);
  const TilingConfig t{1, 2, 64, 64};
  const double first = problem.Evaluate(t);
  const std::int64_t evals = problem.evaluations();
  const double second = problem.Evaluate(t);
  EXPECT_EQ(first, second);
  EXPECT_EQ(problem.evaluations(), evals);  // cache hit, no new simulation
}

TEST(TilingProblem, InfeasibleIsInfinity) {
  const auto mas = MakeScheduler(Method::kMas);
  const sim::HardwareConfig hw = Hw();
  const sim::EnergyModel em = Em();
  const AttentionShape big{"big", 1, 32, 512, 128};
  TilingProblem problem(*mas, big, hw, em);
  const TilingConfig huge{1, 32, 512, 512};
  EXPECT_EQ(problem.Evaluate(huge), TilingProblem::kInfeasible);
}

TEST(GridSearch, FindsFeasibleBest) {
  const auto mas = MakeScheduler(Method::kMas);
  const sim::HardwareConfig hw = Hw();
  const sim::EnergyModel em = Em();
  TilingProblem problem(*mas, SmallShape(), hw, em);
  const SearchResult r = GridSearch(problem);
  ASSERT_TRUE(r.found());
  EXPECT_GT(r.evaluations, 0);
  EXPECT_FALSE(r.trace.empty());
  // Best must be reproducible.
  EXPECT_EQ(problem.Evaluate(r.best), r.best_cycles);
}

TEST(GridSearch, CoarseSubsetNeverBeatsFull) {
  const auto flat = MakeScheduler(Method::kFlat);
  const sim::HardwareConfig hw = Hw();
  const sim::EnergyModel em = Em();
  TilingProblem full_problem(*flat, SmallShape(), hw, em);
  const SearchResult full = GridSearch(full_problem);
  TilingProblem coarse_problem(*flat, SmallShape(), hw, em);
  GridOptions coarse;
  coarse.coarse = true;
  const SearchResult restricted = GridSearch(coarse_problem, coarse);
  ASSERT_TRUE(full.found());
  ASSERT_TRUE(restricted.found());
  EXPECT_LE(full.best_cycles, restricted.best_cycles);
}

TEST(GeneticSearch, ConvergesNearGridOptimum) {
  const auto mas = MakeScheduler(Method::kMas);
  const sim::HardwareConfig hw = Hw();
  const sim::EnergyModel em = Em();
  TilingProblem grid_problem(*mas, SmallShape(), hw, em);
  const SearchResult grid = GridSearch(grid_problem);
  TilingProblem ga_problem(*mas, SmallShape(), hw, em);
  GaOptions opts;
  opts.population = 16;
  opts.generations = 30;
  opts.seed = 3;
  const SearchResult ga = GeneticSearch(ga_problem, opts);
  ASSERT_TRUE(ga.found());
  EXPECT_LE(ga.best_cycles, grid.best_cycles * 1.2);
}

TEST(GeneticSearch, DeterministicForSeed) {
  const auto flat = MakeScheduler(Method::kFlat);
  const sim::HardwareConfig hw = Hw();
  const sim::EnergyModel em = Em();
  GaOptions opts;
  opts.population = 8;
  opts.generations = 5;
  opts.seed = 42;
  TilingProblem p1(*flat, SmallShape(), hw, em);
  TilingProblem p2(*flat, SmallShape(), hw, em);
  const SearchResult a = GeneticSearch(p1, opts);
  const SearchResult b = GeneticSearch(p2, opts);
  EXPECT_EQ(a.best_cycles, b.best_cycles);
  EXPECT_EQ(a.best, b.best);
}

TEST(MctsSearch, ConvergesNearGridOptimum) {
  const auto mas = MakeScheduler(Method::kMas);
  const sim::HardwareConfig hw = Hw();
  const sim::EnergyModel em = Em();
  TilingProblem grid_problem(*mas, SmallShape(), hw, em);
  const SearchResult grid = GridSearch(grid_problem);
  TilingProblem mcts_problem(*mas, SmallShape(), hw, em);
  MctsOptions opts;
  opts.iterations = 600;
  opts.seed = 5;
  const SearchResult mcts = MctsSearch(mcts_problem, opts);
  ASSERT_TRUE(mcts.found());
  EXPECT_LE(mcts.best_cycles, grid.best_cycles * 1.2);
}

TEST(MctsSearch, TraceMonotonicallyImproves) {
  const auto flat = MakeScheduler(Method::kFlat);
  const sim::HardwareConfig hw = Hw();
  const sim::EnergyModel em = Em();
  TilingProblem problem(*flat, SmallShape(), hw, em);
  MctsOptions opts;
  opts.iterations = 200;
  const SearchResult r = MctsSearch(problem, opts);
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    EXPECT_LT(r.trace[i].best_cycles, r.trace[i - 1].best_cycles);
    EXPECT_GE(r.trace[i].evaluation, r.trace[i - 1].evaluation);
  }
}

TEST(AutoTile, FeasibleForAllMethodsAndNetworks) {
  const sim::HardwareConfig hw = Hw();
  const sim::EnergyModel em = Em();
  for (const auto& net : Table1Networks()) {
    for (Method m : AllMethods()) {
      const auto sched = MakeScheduler(m);
      const TilingConfig tiling = AutoTile(*sched, net.shape, hw, em);
      EXPECT_TRUE(sched->Fits(net.shape, tiling, hw))
          << net.name << " / " << sched->name();
    }
  }
}

TEST(SearchQuality, TunedBeatsNaiveTiling) {
  // The §5.5 claim in miniature: searched tilings dramatically beat a naive
  // first-feasible configuration.
  const auto mas = MakeScheduler(Method::kMas);
  const sim::HardwareConfig hw = Hw();
  const sim::EnergyModel em = Em();
  const AttentionShape shape = FindNetwork("BERT-Base & T5-Base").shape;
  // One query row at a time: the natural "first feasible" starting point of a
  // row-granularity search, wasting 15/16 of the MAC mesh rows per pass.
  const TilingConfig naive{1, 1, 1, 64};
  const TilingConfig tuned = AutoTile(*mas, shape, hw, em);
  const double naive_cycles =
      static_cast<double>(mas->Simulate(shape, naive, hw, em).cycles);
  const double tuned_cycles =
      static_cast<double>(mas->Simulate(shape, tuned, hw, em).cycles);
  EXPECT_GT(naive_cycles / tuned_cycles, 4.0);
}

}  // namespace
}  // namespace mas::search
