#include "sim/cost_model.h"

#include <gtest/gtest.h>

#include "common/status.h"
#include "sim/hardware_config.h"

namespace mas::sim {
namespace {

class CostModelTest : public testing::Test {
 protected:
  HardwareConfig hw_ = EdgeSimConfig();
  EnergyModel em_;
  CostModel cm_{hw_, em_};
};

TEST_F(CostModelTest, Log2Ceil) {
  EXPECT_EQ(Log2Ceil(1), 0);
  EXPECT_EQ(Log2Ceil(2), 1);
  EXPECT_EQ(Log2Ceil(3), 2);
  EXPECT_EQ(Log2Ceil(256), 8);
  EXPECT_EQ(Log2Ceil(257), 9);
  EXPECT_THROW(Log2Ceil(0), Error);
}

TEST_F(CostModelTest, MacTileCyclesMatchArrayModel) {
  // 32x64x32 on a 16x16 output-stationary array: 2*2 output tiles, each
  // accumulating over k=64 cycles, plus the fixed setup.
  const TaskCost c = cm_.MacTile(1, 32, 64, 32, 0);
  const auto& core = hw_.cores[0];
  EXPECT_EQ(c.cycles, static_cast<std::uint64_t>(2 * 2 * 64 + core.mac_setup_cycles));
}

TEST_F(CostModelTest, MacTileRoundsUpPartialTiles) {
  // m=17 needs 2 row passes; n=1 needs 1 column pass.
  const TaskCost c = cm_.MacTile(1, 17, 8, 1, 0);
  const auto& core = hw_.cores[0];
  EXPECT_EQ(c.cycles, static_cast<std::uint64_t>(2 * 1 * 8 + core.mac_setup_cycles));
}

TEST_F(CostModelTest, MacTileGroupsScaleLinearly) {
  const TaskCost one = cm_.MacTile(1, 16, 16, 16, 0);
  const TaskCost four = cm_.MacTile(4, 16, 16, 16, 0);
  const auto setup = static_cast<std::uint64_t>(hw_.cores[0].mac_setup_cycles);
  EXPECT_EQ(four.cycles - setup, 4 * (one.cycles - setup));
  EXPECT_DOUBLE_EQ(four.energy.mac_pe_pj, 4 * one.energy.mac_pe_pj);
}

TEST_F(CostModelTest, MacEnergyCountsRealOpsNotPadding) {
  // PE energy is schedule-invariant (paper §5.3.3): a ragged 17x8x1 tile
  // charges exactly 17*8*1 MAC ops even though the array is underutilized.
  const TaskCost c = cm_.MacTile(1, 17, 8, 1, 0);
  EXPECT_DOUBLE_EQ(c.energy.mac_pe_pj, em_.MacOps(17 * 8 * 1));
}

TEST_F(CostModelTest, VecSoftmaxCyclesMatchPassModel) {
  const auto& core = hw_.cores[0];
  const std::int64_t row_len = 512;
  const TaskCost c = cm_.VecSoftmax(1, 1, row_len, 0);
  const std::int64_t chunks = (row_len + core.vec_lanes - 1) / core.vec_lanes;
  const std::int64_t per_row =
      chunks * core.SoftmaxLaneCostPerElement() + 2 * Log2Ceil(core.vec_lanes);
  EXPECT_EQ(c.cycles, static_cast<std::uint64_t>(per_row + core.vec_setup_cycles));
}

TEST_F(CostModelTest, VecSoftmaxRowsScaleLinearly) {
  const auto setup = static_cast<std::uint64_t>(hw_.cores[0].vec_setup_cycles);
  const TaskCost one = cm_.VecSoftmax(1, 1, 256, 0);
  const TaskCost eight = cm_.VecSoftmax(2, 4, 256, 0);
  EXPECT_EQ(eight.cycles - setup, 8 * (one.cycles - setup));
}

TEST_F(CostModelTest, VecSoftmaxExtraOpsIncreaseCost) {
  const TaskCost base = cm_.VecSoftmax(1, 4, 256, 0);
  const TaskCost extra = cm_.VecSoftmax(1, 4, 256, 0, /*extra_lane_ops_per_elem=*/8);
  EXPECT_GT(extra.cycles, base.cycles);
  EXPECT_GT(extra.energy.vec_pe_pj, base.energy.vec_pe_pj);
}

TEST_F(CostModelTest, VecElementwiseZeroIsFree) {
  EXPECT_EQ(cm_.VecElementwise(0, 4, 0).cycles, 0u);
  EXPECT_EQ(cm_.VecElementwise(100, 0, 0).cycles, 0u);
}

TEST_F(CostModelTest, DmaBandwidthModel) {
  // Edge config: 30 GB/s at 3.75 GHz = 8 B/cycle.
  const TaskCost c = cm_.Dma(8000, true);
  EXPECT_EQ(c.cycles, static_cast<std::uint64_t>(1000 + hw_.dma_setup_cycles));
  EXPECT_EQ(c.dram_read_bytes, 8000);
  EXPECT_EQ(c.dram_write_bytes, 0);
}

TEST_F(CostModelTest, DmaWriteDirection) {
  const TaskCost c = cm_.Dma(64, false);
  EXPECT_EQ(c.dram_read_bytes, 0);
  EXPECT_EQ(c.dram_write_bytes, 64);
}

TEST_F(CostModelTest, DmaZeroBytesIsBarrier) {
  const TaskCost c = cm_.Dma(0, true);
  EXPECT_EQ(c.cycles, 0u);
  EXPECT_EQ(c.dram_read_bytes, 0);
  EXPECT_DOUBLE_EQ(c.energy.total_pj(), 0.0);
}

TEST_F(CostModelTest, DmaEnergyChargesDramAndL1) {
  const TaskCost c = cm_.Dma(1000, true);
  EXPECT_DOUBLE_EQ(c.energy.dram_pj, em_.DramTraffic(1000));
  EXPECT_DOUBLE_EQ(c.energy.l1_pj, em_.L1Traffic(1000));
  EXPECT_DOUBLE_EQ(c.energy.l0_pj, 0.0);
}

TEST_F(CostModelTest, L1ShuffleEnergyOnly) {
  const TaskCost c = cm_.L1Shuffle(500);
  EXPECT_EQ(c.cycles, 0u);
  EXPECT_DOUBLE_EQ(c.energy.l1_pj, em_.L1Traffic(1000));  // read + write
}

TEST_F(CostModelTest, HeterogeneousCoresDiffer) {
  const HardwareConfig npu = DavinciNpuConfig();
  const CostModel cm(npu, em_);
  // Ascend Tiny (core 2, 8x8 array) needs 4x the passes of a Lite core.
  const TaskCost lite = cm.MacTile(1, 32, 16, 32, 0);
  const TaskCost tiny = cm.MacTile(1, 32, 16, 32, 2);
  EXPECT_GT(tiny.cycles, lite.cycles);
  // PE energy identical (same real ops).
  EXPECT_DOUBLE_EQ(tiny.energy.mac_pe_pj, lite.energy.mac_pe_pj);
}

TEST_F(CostModelTest, InvalidArgsRejected) {
  EXPECT_THROW(cm_.MacTile(0, 1, 1, 1, 0), mas::Error);
  EXPECT_THROW(cm_.MacTile(1, 0, 1, 1, 0), mas::Error);
  EXPECT_THROW(cm_.VecSoftmax(1, 0, 1, 0), mas::Error);
  EXPECT_THROW(cm_.Dma(-1, true), mas::Error);
  EXPECT_THROW(cm_.L1Shuffle(-1), mas::Error);
}

TEST_F(CostModelTest, EnergyBreakdownSumsComponents) {
  EnergyBreakdown e;
  e.dram_pj = 1;
  e.l1_pj = 2;
  e.l0_pj = 3;
  e.mac_pe_pj = 4;
  e.vec_pe_pj = 5;
  EXPECT_DOUBLE_EQ(e.total_pj(), 15.0);
  EnergyBreakdown f = e;
  f += e;
  EXPECT_DOUBLE_EQ(f.total_pj(), 30.0);
}

}  // namespace
}  // namespace mas::sim
