// Determinism and regression tests for the parallel tiling search.
//
// The contract under test: for any `jobs`, every strategy produces a
// SearchResult byte-identical to the serial run — best tiling, best cycles,
// evaluation counts, and the full convergence trace. Plus regressions for
// the seed bugs fixed in this PR: the GridSearch budget check that only
// broke the innermost loop, and the 16-bit-packed evaluation-cache key that
// collided for tile extents >= 65536.
#include <cstdint>

#include <gtest/gtest.h>

#include "dataflow/workloads.h"
#include "schedulers/scheduler.h"
#include "search/tiling_search.h"
#include "sim/hardware_config.h"

namespace mas::search {
namespace {

sim::HardwareConfig Hw() { return sim::EdgeSimConfig(); }
sim::EnergyModel Em() { return sim::EnergyModel{}; }

AttentionShape SmallShape() { return AttentionShape{"small", 1, 4, 128, 32}; }

void ExpectSameSearchResult(const SearchResult& a, const SearchResult& b) {
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.best_cycles, b.best_cycles);  // bit-equal doubles
  EXPECT_EQ(a.evaluations, b.evaluations);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].evaluation, b.trace[i].evaluation);
    EXPECT_EQ(a.trace[i].best_cycles, b.trace[i].best_cycles);
  }
}

TEST(ParallelSearch, GridIdenticalAcrossThreadCounts) {
  const auto mas = MakeScheduler(Method::kMas);
  const sim::HardwareConfig hw = Hw();
  const sim::EnergyModel em = Em();
  GridOptions serial_opts;
  serial_opts.coarse = true;
  TilingProblem serial_problem(*mas, SmallShape(), hw, em);
  const SearchResult serial = GridSearch(serial_problem, serial_opts);

  for (int jobs : {2, 8}) {
    GridOptions opts = serial_opts;
    opts.jobs = jobs;
    TilingProblem problem(*mas, SmallShape(), hw, em);
    const SearchResult parallel = GridSearch(problem, opts);
    ExpectSameSearchResult(serial, parallel);
    EXPECT_EQ(serial_problem.evaluations(), problem.evaluations());
  }
}

TEST(ParallelSearch, GeneticIdenticalAcrossThreadCounts) {
  const auto flat = MakeScheduler(Method::kFlat);
  const sim::HardwareConfig hw = Hw();
  const sim::EnergyModel em = Em();
  GaOptions serial_opts;
  serial_opts.population = 12;
  serial_opts.generations = 8;
  serial_opts.seed = 7;
  TilingProblem serial_problem(*flat, SmallShape(), hw, em);
  const SearchResult serial = GeneticSearch(serial_problem, serial_opts);

  for (int jobs : {2, 8}) {
    GaOptions opts = serial_opts;
    opts.jobs = jobs;
    TilingProblem problem(*flat, SmallShape(), hw, em);
    const SearchResult parallel = GeneticSearch(problem, opts);
    ExpectSameSearchResult(serial, parallel);
    EXPECT_EQ(serial_problem.evaluations(), problem.evaluations());
  }
}

TEST(ParallelSearch, MctsIdenticalAcrossThreadCounts) {
  // MCTS parallelism is speculative (prefetched leaves on a cloned tree);
  // the authoritative serial replay must be unaffected, including the
  // evaluations() counter (speculative entries only count once observed).
  const auto mas = MakeScheduler(Method::kMas);
  const sim::HardwareConfig hw = Hw();
  const sim::EnergyModel em = Em();
  MctsOptions serial_opts;
  serial_opts.iterations = 150;
  serial_opts.seed = 11;
  TilingProblem serial_problem(*mas, SmallShape(), hw, em);
  const SearchResult serial = MctsSearch(serial_problem, serial_opts);

  for (int jobs : {2, 8}) {
    MctsOptions opts = serial_opts;
    opts.jobs = jobs;
    TilingProblem problem(*mas, SmallShape(), hw, em);
    const SearchResult parallel = MctsSearch(problem, opts);
    ExpectSameSearchResult(serial, parallel);
    EXPECT_EQ(serial_problem.evaluations(), problem.evaluations());
  }
}

TEST(ParallelSearch, ReferenceModeIdenticalToFastPath) {
  // The bench's "seed path" evaluation (polling engine, no arena reuse)
  // must agree with the fast path bit-for-bit.
  const auto mas = MakeScheduler(Method::kMas);
  const sim::HardwareConfig hw = Hw();
  const sim::EnergyModel em = Em();
  GridOptions opts;
  opts.coarse = true;
  TilingProblem fast(*mas, SmallShape(), hw, em);
  const SearchResult fast_result = GridSearch(fast, opts);
  TilingProblem ref(*mas, SmallShape(), hw, em);
  ref.set_reference_mode(true);
  const SearchResult ref_result = GridSearch(ref, opts);
  ExpectSameSearchResult(fast_result, ref_result);
}

TEST(GridSearchBudget, ExhaustedBudgetStopsTheWholeScan) {
  // Seed bug: `if (evals >= max) break;` only left the innermost nkv loop,
  // so the scan kept spinning through the outer lattice. The fixed scan must
  // stop at exactly max_evaluations lattice cells — counted in result.
  const auto mas = MakeScheduler(Method::kMas);
  const sim::HardwareConfig hw = Hw();
  const sim::EnergyModel em = Em();
  TilingProblem problem(*mas, SmallShape(), hw, em);
  GridOptions opts;
  opts.max_evaluations = 17;
  const SearchResult r = GridSearch(problem, opts);
  EXPECT_EQ(r.evaluations, 17);

  // The cells visited must be the first 17 in scan order: an unbudgeted scan
  // restricted to those cells gives the same incumbent and trace.
  TilingProblem redo_problem(*mas, SmallShape(), hw, em);
  GridOptions unbounded;
  const SearchResult full = GridSearch(redo_problem, unbounded);
  ASSERT_GE(full.evaluations, 17);
  // The budgeted trace must be a prefix of the full scan's trace.
  ASSERT_LE(r.trace.size(), full.trace.size());
  for (std::size_t i = 0; i < r.trace.size(); ++i) {
    EXPECT_EQ(r.trace[i].evaluation, full.trace[i].evaluation);
    EXPECT_EQ(r.trace[i].best_cycles, full.trace[i].best_cycles);
  }
}

TEST(EvaluationCache, NoCollisionsForHugeTileExtents) {
  // Seed bug: Key() packed the four factors into 16-bit lanes of one u64
  // with shifted XOR, so an N_KV >= 65536 (reachable via §5.6
  // limits_maxseq-style long-context shapes) bled into the N_Q lane:
  //   (3<<16) ^ 16384  ==  (2<<16) ^ (65536 + 16384)
  // After evaluating the *feasible* tiling A = (1,1,3,16384), the seed cache
  // would return A's finite cycle count for the *infeasible* tiling
  // B = (1,1,2,81920) — a silently wrong search result. The tuple-keyed
  // cache must keep them distinct.
  const auto flat = MakeScheduler(Method::kFlat);
  const sim::HardwareConfig hw = Hw();
  const sim::EnergyModel em = Em();
  const AttentionShape huge{"long_ctx", 1, 1, 64, 16, /*kv_len=*/1 << 17};
  TilingProblem problem(*flat, huge, hw, em);

  const TilingConfig a{1, 1, 3, 16384};
  const TilingConfig b{1, 1, 2, 81920};
  ASSERT_TRUE(problem.Feasible(a));
  ASSERT_FALSE(problem.Feasible(b));  // 4 double-buffered 2.6 MB K/V tiles > L1

  const double cycles_a = problem.Evaluate(a);
  EXPECT_NE(cycles_a, TilingProblem::kInfeasible);
  // Under the seed key this lookup hit A's entry and returned finite cycles.
  EXPECT_EQ(problem.Evaluate(b), TilingProblem::kInfeasible);
  // Both entries round-trip unchanged.
  EXPECT_EQ(problem.Evaluate(a), cycles_a);
  EXPECT_EQ(problem.Evaluate(b), TilingProblem::kInfeasible);
}

}  // namespace
}  // namespace mas::search
