// Fault-injection and resilience tests: --fault grammar parsing, registry
// semantics, per-model draw behavior (probabilities, limits, eligibility),
// hand-checkable stall/derate/crash-retry arithmetic through ServeSession,
// the shed-never-started property, and byte-determinism across --jobs and
// fault seeds.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "serve/fault.h"
#include "serve/session.h"

namespace mas::serve {
namespace {

sim::HardwareConfig Hw() { return sim::EdgeSimConfig(); }

ServePlannerOptions FastOptions() {
  ServePlannerOptions options;
  options.min_context_bucket = 64;
  return options;
}

AttentionGeometry Geometry() { return BertBaseGeometry(); }

std::unique_ptr<FaultModel> Make(const std::string& spec_text) {
  return FaultModelRegistry::Instance().Create(FaultSpec::Parse(spec_text));
}

std::string ResultJson(const ServeResult& result) {
  JsonWriter json;
  json.BeginObject();
  result.WriteJson(json, Hw());
  json.EndObject();
  return json.Take();
}

ServeResult RunTrace(const RequestTrace& trace, ServeSessionOptions options) {
  Planner planner;
  ServePlanner serve_planner(planner, Hw(), Geometry(), FastOptions());
  ServeSession session(serve_planner, options);
  return session.Run(trace);
}

// ----------------------------------------------------------------- grammar

TEST(FaultSpec, ParsesKindAndParams) {
  const FaultSpec none;
  EXPECT_FALSE(none.enabled());

  const FaultSpec bare = FaultSpec::Parse("stall");
  EXPECT_TRUE(bare.enabled());
  EXPECT_EQ(bare.kind, "stall");
  EXPECT_TRUE(bare.params.empty());
  EXPECT_EQ(bare.ToString(), "stall");

  const FaultSpec full = FaultSpec::Parse("crash:prob=0.1,limit=4");
  EXPECT_EQ(full.kind, "crash");
  ASSERT_EQ(full.params.size(), 2u);
  EXPECT_DOUBLE_EQ(full.Param("prob", -1.0), 0.1);
  EXPECT_DOUBLE_EQ(full.Param("limit", -1.0), 4.0);
  EXPECT_TRUE(full.Has("prob"));
  EXPECT_FALSE(full.Has("cycles"));
  EXPECT_DOUBLE_EQ(full.Param("cycles", 9.5), 9.5);  // fallback when absent
  EXPECT_EQ(full.ToString(), "crash:prob=0.1,limit=4");
  // ToString round-trips through Parse.
  EXPECT_EQ(FaultSpec::Parse(full.ToString()).ToString(), full.ToString());
}

TEST(FaultSpec, RejectsMalformedText) {
  EXPECT_THROW(FaultSpec::Parse(""), Error);
  EXPECT_THROW(FaultSpec::Parse(":prob=1"), Error);       // no kind
  EXPECT_THROW(FaultSpec::Parse("stall:"), Error);        // empty param list
  EXPECT_THROW(FaultSpec::Parse("stall:prob"), Error);    // not key=value
  EXPECT_THROW(FaultSpec::Parse("stall:prob="), Error);   // empty value
  EXPECT_THROW(FaultSpec::Parse("stall:=1"), Error);      // empty key
  EXPECT_THROW(FaultSpec::Parse("stall:prob=abc"), Error);
  EXPECT_THROW(FaultSpec::Parse("stall:prob=1e999"), Error);  // overflow
  EXPECT_THROW(FaultSpec::Parse("stall:prob=inf"), Error);
  EXPECT_THROW(FaultSpec::Parse("stall:prob=nan"), Error);
  EXPECT_THROW(FaultSpec::Parse("stall:prob=1,prob=0"), Error);  // duplicate key
}

// ---------------------------------------------------------------- registry

TEST(FaultRegistry, CatalogsBuiltins) {
  FaultModelRegistry& registry = FaultModelRegistry::Instance();
  const std::vector<FaultModelInfo> models = registry.List();
  ASSERT_EQ(models.size(), 3u);
  EXPECT_EQ(models[0].name, "stall");
  EXPECT_EQ(models[1].name, "derate");
  EXPECT_EQ(models[2].name, "crash");
  for (const FaultModelInfo& info : models) {
    EXPECT_FALSE(info.summary.empty()) << info.name;
    EXPECT_FALSE(info.params.empty()) << info.name;
    EXPECT_NE(registry.Find(info.name), nullptr);
  }
  EXPECT_EQ(registry.Find("bogus"), nullptr);
}

TEST(FaultRegistry, UnknownKindListsCatalog) {
  try {
    Make("bogus");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'stall'"), std::string::npos) << what;
    EXPECT_NE(what.find("'crash'"), std::string::npos) << what;
  }
}

TEST(FaultRegistry, DuplicateRegistrationThrows) {
  EXPECT_THROW(
      FaultModelRegistry::Instance().Register({"stall", "dup", "none"},
                                              [](const FaultSpec&) {
                                                return std::unique_ptr<FaultModel>();
                                              }),
      Error);
}

TEST(FaultRegistry, FactoriesValidateParams) {
  EXPECT_THROW(Make("stall:prb=1"), Error);           // typoed key
  EXPECT_THROW(Make("stall:prob=1.5"), Error);        // probability > 1
  EXPECT_THROW(Make("stall:prob=-0.1"), Error);
  EXPECT_THROW(Make("stall:cycles=0"), Error);        // no-op stall
  EXPECT_THROW(Make("stall:cycles=2.5"), Error);      // non-integer count
  EXPECT_THROW(Make("stall:limit=-1"), Error);
  EXPECT_THROW(Make("stall:limit=1.5"), Error);
  EXPECT_THROW(Make("derate:factor=0"), Error);       // freq multiplier in (0,1]
  EXPECT_THROW(Make("derate:factor=1.5"), Error);
  EXPECT_THROW(Make("derate:rounds=0"), Error);       // empty episode
  EXPECT_THROW(Make("crash:prob=2"), Error);
  EXPECT_NO_THROW(Make("stall"));                     // defaults are valid
  EXPECT_NO_THROW(Make("derate"));
  EXPECT_NO_THROW(Make("crash"));
  EXPECT_NO_THROW(Make("derate:factor=1"));           // boundary is legal
  EXPECT_NO_THROW(Make("stall:prob=0"));
  EXPECT_NO_THROW(Make("stall:prob=1"));
}

// ------------------------------------------------------------------- draws

TEST(FaultDraw, RoundRngIsDeterministicAndRoundKeyed) {
  Rng a = FaultRoundRng(7, 3);
  Rng b = FaultRoundRng(7, 3);
  EXPECT_EQ(a.Next(), b.Next());
  Rng c = FaultRoundRng(7, 4);
  Rng d = FaultRoundRng(8, 3);
  EXPECT_NE(FaultRoundRng(7, 3).Next(), c.Next());
  EXPECT_NE(FaultRoundRng(7, 3).Next(), d.Next());
}

TEST(FaultDraw, StallHonorsProbabilityAndLimit) {
  const std::unique_ptr<FaultModel> stall = Make("stall:prob=1,cycles=7,limit=2");
  FaultContext ctx;
  ctx.in_flight = 1;
  for (int round = 0; round < 5; ++round) {
    ctx.round = round;
    RoundFaults out;
    Rng rng = FaultRoundRng(1, round);
    stall->Draw(ctx, rng, &out);
    EXPECT_EQ(out.stall_cycles, round < 2 ? 7u : 0u) << "round " << round;
    EXPECT_FALSE(out.crash);
    EXPECT_DOUBLE_EQ(out.derate_factor, 1.0);
  }

  // prob=0 never fires, on any stream.
  const std::unique_ptr<FaultModel> never = Make("stall:prob=0");
  for (int round = 0; round < 32; ++round) {
    ctx.round = round;
    RoundFaults out;
    Rng rng = FaultRoundRng(round, round);
    never->Draw(ctx, rng, &out);
    EXPECT_EQ(out.stall_cycles, 0u) << "round " << round;
  }
}

TEST(FaultDraw, DerateEpisodeSpansRounds) {
  // limit=1: exactly one episode of `rounds` consecutive derated rounds.
  const std::unique_ptr<FaultModel> derate =
      Make("derate:prob=1,factor=0.5,rounds=3,limit=1");
  FaultContext ctx;
  ctx.in_flight = 1;
  int derated = 0;
  for (int round = 0; round < 10; ++round) {
    ctx.round = round;
    RoundFaults out;
    Rng rng = FaultRoundRng(1, round);
    derate->Draw(ctx, rng, &out);
    if (out.derate_factor < 1.0) {
      EXPECT_DOUBLE_EQ(out.derate_factor, 0.5);
      ++derated;
    }
  }
  EXPECT_EQ(derated, 3);
}

TEST(FaultDraw, CrashRequiresADecodingVictim) {
  const std::unique_ptr<FaultModel> crash = Make("crash:prob=1,limit=1");
  FaultContext ctx;
  ctx.round = 0;
  ctx.in_flight = 2;
  ctx.decoding = 0;  // everyone still prefilling: nothing holds KV state yet
  RoundFaults out;
  Rng rng = FaultRoundRng(1, 0);
  crash->Draw(ctx, rng, &out);
  EXPECT_FALSE(out.crash);

  // The skipped round did not consume the event budget.
  ctx.round = 1;
  ctx.decoding = 1;
  RoundFaults out2;
  Rng rng2 = FaultRoundRng(1, 1);
  crash->Draw(ctx, rng2, &out2);
  EXPECT_TRUE(out2.crash);
}

// ------------------------------------------------- session fault arithmetic

// One request, three rounds (prefill + 2 decode steps). A prob=1 stall adds
// exactly `cycles` per round; a prob=1 derate at factor 0.5 exactly doubles
// every sim; neither changes energy (the work is unchanged, only its timing).
TEST(FaultSession, StallAndDerateArithmetic) {
  RequestTrace trace;
  trace.requests = {{0, 0, 100, 2, 1}};

  const ServeResult plain = RunTrace(trace, ServeSessionOptions{});
  ASSERT_EQ(plain.metrics.steps, 3);
  EXPECT_FALSE(plain.metrics.fault_layer_active);

  ServeSessionOptions stall;
  stall.fault = FaultSpec::Parse("stall:prob=1,cycles=5000");
  const ServeResult stalled = RunTrace(trace, stall);
  EXPECT_TRUE(stalled.metrics.fault_layer_active);
  EXPECT_EQ(stalled.metrics.stall_events, 3);
  EXPECT_EQ(stalled.metrics.stalled_cycles, 15000u);
  EXPECT_EQ(stalled.metrics.makespan_cycles, plain.metrics.makespan_cycles + 15000u);
  EXPECT_DOUBLE_EQ(stalled.metrics.energy.total_pj(), plain.metrics.energy.total_pj());
  // The stall lands before the round's sims, so TTFT absorbs round 0's.
  EXPECT_EQ(stalled.requests[0].TtftCycles(), plain.requests[0].TtftCycles() + 5000u);

  ServeSessionOptions derate;
  derate.fault = FaultSpec::Parse("derate:prob=1,factor=0.5");
  const ServeResult derated = RunTrace(trace, derate);
  EXPECT_EQ(derated.metrics.derated_rounds, 3);
  EXPECT_EQ(derated.metrics.makespan_cycles, 2 * plain.metrics.makespan_cycles);
  EXPECT_EQ(derated.requests[0].TtftCycles(), 2 * plain.requests[0].TtftCycles());
  EXPECT_DOUBLE_EQ(derated.metrics.energy.total_pj(), plain.metrics.energy.total_pj());
  EXPECT_EQ(derated.metrics.dram_read_bytes, plain.metrics.dram_read_bytes);
}

// Hand-checked crash-retry walk. One request (prefill 64, one decode token),
// crash:prob=1,limit=1, one retry, backoff 1 tick:
//   round 0  prefill (pa cycles, first token at pa)
//   round 1  crash before the decode: the attempt's prefill is wasted, the
//            request re-enters admission at tick 2; the round still counts
//   round 2  re-prefill (clock pa -> 2pa, first token re-stamped at 2pa)
//   round 3  decode (clock 2pa + da), request completes
TEST(FaultSession, CrashRetryArithmetic) {
  RequestTrace trace;
  trace.requests = {{0, 0, 64, 1, 1}};

  Planner planner;
  ServePlanner serve_planner(planner, Hw(), Geometry(), FastOptions());
  ServeSessionOptions options;
  options.fault = FaultSpec::Parse("crash:prob=1,limit=1");
  options.resilience.max_retries = 1;
  options.resilience.retry_backoff_ticks = 1;
  ServeSession session(serve_planner, options);
  const ServeResult result = session.Run(trace);

  const std::uint64_t pa =
      planner.Simulate(serve_planner.PrefillPlan(64), Hw()).cycles;
  const std::uint64_t da =
      planner.Simulate(serve_planner.DecodePlan(64), Hw()).cycles;

  const ServeMetrics& m = result.metrics;
  EXPECT_EQ(m.crash_events, 1);
  EXPECT_EQ(m.retries, 1);
  EXPECT_EQ(m.crashed, 0);
  EXPECT_EQ(m.completed, 1);
  EXPECT_EQ(m.wasted_prefill_cycles, pa);
  EXPECT_EQ(m.prefill_sims, 2);  // the re-prefill is real work
  EXPECT_EQ(m.decode_sims, 1);
  EXPECT_EQ(m.steps, 4);  // the crash round counts: later draws stay aligned
  EXPECT_EQ(m.makespan_cycles, 2 * pa + da);
  EXPECT_EQ(m.generated_tokens, 3);  // two first tokens + one decode token

  const RequestMetrics& r = result.requests[0];
  EXPECT_EQ(r.outcome, RequestOutcome::kCompleted);
  EXPECT_EQ(r.retries, 1);
  EXPECT_EQ(r.TtftCycles(), 2 * pa);  // the retry recomputes the prefill
  EXPECT_EQ(r.finish_cycles, 2 * pa + da);
}

TEST(FaultSession, CrashWithoutRetryBudgetIsTerminal) {
  RequestTrace trace;
  trace.requests = {{0, 0, 64, 1, 1}};
  ServeSessionOptions options;
  options.fault = FaultSpec::Parse("crash:prob=1,limit=1");
  const ServeResult result = RunTrace(trace, options);
  EXPECT_EQ(result.requests[0].outcome, RequestOutcome::kCrashed);
  EXPECT_EQ(result.metrics.crashed, 1);
  EXPECT_EQ(result.metrics.completed, 0);
  EXPECT_EQ(result.metrics.retries, 0);
  EXPECT_GT(result.metrics.wasted_prefill_cycles, 0u);
  EXPECT_EQ(result.metrics.goodput_tokens, 0);
}

// ------------------------------------------------------ resilience policies

// A shed request never reaches the device: whether it was dropped by the
// admission cap or by shed_late, its first_token_cycles / finish_cycles
// stay zero and it consumed no retries.
TEST(ResilienceSession, ShedRequestsNeverStart) {
  SyntheticTraceSpec spec;
  spec.requests = 10;
  spec.seed = 3;
  spec.prompt_min = 64;
  spec.prompt_max = 200;
  spec.decode_min = 1;
  spec.decode_max = 4;
  spec.max_arrival_gap = 0;  // everyone arrives at tick 0: maximal overload
  const RequestTrace trace = GenerateTrace(spec);

  ServeSessionOptions options;
  options.max_batch = 1;
  options.resilience.ttft_deadline_cycles = 1;  // nobody's budget survives
  options.resilience.shed_late = true;
  options.resilience.admission_queue_cap = 4;
  const ServeResult result = RunTrace(trace, options);

  int shed = 0;
  for (const RequestMetrics& r : result.requests) {
    if (r.outcome != RequestOutcome::kShed) continue;
    ++shed;
    EXPECT_EQ(r.first_token_cycles, 0u) << r.id;
    EXPECT_EQ(r.finish_cycles, 0u) << r.id;
    EXPECT_EQ(r.TtftCycles(), 0u) << r.id;
    EXPECT_EQ(r.retries, 0) << r.id;
  }
  EXPECT_EQ(shed, result.metrics.shed);
  EXPECT_GT(shed, 0);
  // The cap sheds 10 - 4 (queue) - 1 (batch) = 5 on arrival; the deadline
  // sheds the queued rest as they come up for their prefill.
  EXPECT_EQ(result.metrics.completed + result.metrics.shed,
            result.metrics.requests);
}

TEST(ResilienceSession, TotalDeadlineKillsOverdueRequests) {
  RequestTrace trace;
  trace.requests = {
      {0, 0, 100, 8, 1},  // long-running head-of-line request
      {1, 0, 64, 1, 1},   // waits behind it past its own total deadline
  };
  ServeSessionOptions options;
  options.max_batch = 1;
  options.resilience.total_deadline_cycles = 1;
  const ServeResult result = RunTrace(trace, options);
  // Request 0 starts at clock 0 and is overdue from round 1 on: it dies
  // mid-flight and its prefill investment is wasted. Request 1 is killed in
  // the queue before it ever starts.
  EXPECT_EQ(result.requests[0].outcome, RequestOutcome::kTimedOut);
  EXPECT_EQ(result.requests[1].outcome, RequestOutcome::kTimedOut);
  EXPECT_EQ(result.metrics.timed_out, 2);
  EXPECT_GT(result.metrics.wasted_prefill_cycles, 0u);
  EXPECT_EQ(result.requests[1].first_token_cycles, 0u);
}

TEST(ResilienceSession, OptionValidation) {
  Planner planner;
  ServePlanner serve_planner(planner, Hw(), Geometry(), FastOptions());
  ServeSessionOptions bad;
  bad.resilience.shed_late = true;  // needs a TTFT deadline to measure against
  EXPECT_THROW(ServeSession(serve_planner, bad), Error);
  bad = {};
  bad.resilience.max_retries = -1;
  EXPECT_THROW(ServeSession(serve_planner, bad), Error);
  bad = {};
  bad.resilience.max_retries = 1;
  bad.resilience.retry_backoff_ticks = 0;
  EXPECT_THROW(ServeSession(serve_planner, bad), Error);
  bad = {};
  bad.fault = FaultSpec::Parse("stall:prob=2");  // factory rejects eagerly
  EXPECT_THROW(ServeSession(serve_planner, bad), Error);
}

// --------------------------------------------------------------- determinism

TEST(FaultDeterminism, ResultIsIndependentOfJobsWithFaultsAndPoliciesOn) {
  SyntheticTraceSpec spec;
  spec.requests = 8;
  spec.seed = 21;
  spec.prompt_min = 32;
  spec.prompt_max = 200;
  spec.decode_min = 2;
  spec.decode_max = 10;
  const RequestTrace trace = GenerateTrace(spec);

  std::string baseline;
  for (int jobs : {1, 2, 8}) {
    Planner planner;
    ServePlanner serve_planner(planner, Hw(), Geometry(), FastOptions());
    ServeSessionOptions options;
    options.max_batch = 3;
    options.jobs = jobs;
    options.fault = FaultSpec::Parse("crash:prob=0.5");
    options.resilience.max_retries = 2;
    options.resilience.retry_backoff_ticks = 1;
    options.resilience.total_deadline_cycles = 400'000'000;
    options.resilience.ttft_deadline_cycles = 200'000'000;
    options.resilience.shed_late = true;
    options.resilience.admission_queue_cap = 4;
    ServeSession session(serve_planner, options);
    const std::string json = ResultJson(session.Run(trace));
    if (baseline.empty()) {
      baseline = json;
    } else {
      EXPECT_EQ(json, baseline) << "jobs=" << jobs;
    }
  }
}

TEST(FaultDeterminism, FaultSeedSelectsTheStream) {
  RequestTrace trace;
  trace.requests = {{0, 0, 100, 30, 1}};
  ServeSessionOptions a;
  a.fault = FaultSpec::Parse("stall:prob=0.3,cycles=12345");
  const ServeResult ra = RunTrace(trace, a);
  const ServeResult ra2 = RunTrace(trace, a);
  EXPECT_EQ(ResultJson(ra), ResultJson(ra2));  // reruns replay exactly

  // Different seeds select different per-round firing patterns. (An
  // aggregate like stalled_cycles can collide — it only counts events — so
  // compare the pattern itself.)
  const auto pattern = [](std::uint64_t seed) {
    const std::unique_ptr<FaultModel> stall = Make("stall:prob=0.5,cycles=1");
    std::vector<bool> fired;
    for (int round = 0; round < 64; ++round) {
      FaultContext ctx;
      ctx.round = round;
      ctx.in_flight = 1;
      RoundFaults out;
      Rng rng = FaultRoundRng(seed, round);
      stall->Draw(ctx, rng, &out);
      fired.push_back(out.stall_cycles > 0);
    }
    return fired;
  };
  EXPECT_NE(pattern(1), pattern(2));
}

// With the whole layer off the result must not even carry the resilience
// fields (byte-compat with pre-fault output is covered by the goldens; this
// pins the gate itself).
TEST(FaultDeterminism, DisabledLayerEmitsNoResilienceJson) {
  RequestTrace trace;
  trace.requests = {{0, 0, 64, 1, 1}};
  const std::string off = ResultJson(RunTrace(trace, ServeSessionOptions{}));
  EXPECT_EQ(off.find("\"outcome\""), std::string::npos);
  EXPECT_EQ(off.find("\"goodput_tokens_per_second\""), std::string::npos);
  EXPECT_EQ(off.find("\"wasted_prefill_cycles\""), std::string::npos);

  ServeSessionOptions on;
  on.fault = FaultSpec::Parse("stall:prob=0");  // enabled, even if it never fires
  const std::string with = ResultJson(RunTrace(trace, on));
  EXPECT_NE(with.find("\"outcome\""), std::string::npos);
  EXPECT_NE(with.find("\"goodput_tokens_per_second\""), std::string::npos);
}

}  // namespace
}  // namespace mas::serve
