#include "kernels/attention_kernels.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace mas {
namespace {

constexpr double kTol = 1e-5;

TensorF Random(Shape4 s, std::uint64_t seed, float lo = -1.0f, float hi = 1.0f) {
  Rng rng(seed);
  TensorF t(s);
  FillUniform(t, rng, lo, hi);
  return t;
}

TEST(MatMulTransposed, TinyKnownValues) {
  TensorF a(1, 1, 2, 2), b(1, 1, 2, 2);
  // a = [[1,2],[3,4]], b = [[5,6],[7,8]] -> a b^T = [[17,23],[39,53]]
  a.at(0, 0, 0, 0) = 1; a.at(0, 0, 0, 1) = 2; a.at(0, 0, 1, 0) = 3; a.at(0, 0, 1, 1) = 4;
  b.at(0, 0, 0, 0) = 5; b.at(0, 0, 0, 1) = 6; b.at(0, 0, 1, 0) = 7; b.at(0, 0, 1, 1) = 8;
  const TensorF c = MatMulTransposed(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0, 0, 0), 17.0f);
  EXPECT_FLOAT_EQ(c.at(0, 0, 0, 1), 23.0f);
  EXPECT_FLOAT_EQ(c.at(0, 0, 1, 0), 39.0f);
  EXPECT_FLOAT_EQ(c.at(0, 0, 1, 1), 53.0f);
}

TEST(MatMul, TinyKnownValues) {
  TensorF a(1, 1, 2, 2), b(1, 1, 2, 2);
  a.at(0, 0, 0, 0) = 1; a.at(0, 0, 0, 1) = 2; a.at(0, 0, 1, 0) = 3; a.at(0, 0, 1, 1) = 4;
  b.at(0, 0, 0, 0) = 5; b.at(0, 0, 0, 1) = 6; b.at(0, 0, 1, 0) = 7; b.at(0, 0, 1, 1) = 8;
  const TensorF c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0, 0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(0, 0, 0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(0, 0, 1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at(0, 0, 1, 1), 50.0f);
}

TEST(MatMul, ShapeMismatchRejected) {
  TensorF a(1, 1, 2, 3), b(1, 1, 4, 2);
  EXPECT_THROW(MatMul(a, b), Error);       // inner 3 vs 4
  TensorF bt(1, 1, 4, 4);
  EXPECT_THROW(MatMulTransposed(a, bt), Error);  // inner 3 vs 4
  TensorF b2(2, 1, 3, 2);
  EXPECT_THROW(MatMul(a, b2), Error);      // batch mismatch
}

TEST(SoftmaxRows, RowsSumToOne) {
  const TensorF c = Random({2, 3, 8, 16}, 1, -4.0f, 4.0f);
  const TensorF p = SoftmaxRows(c);
  for (std::int64_t b = 0; b < 2; ++b)
    for (std::int64_t h = 0; h < 3; ++h)
      for (std::int64_t r = 0; r < 8; ++r) {
        double sum = 0.0;
        for (std::int64_t e = 0; e < 16; ++e) {
          EXPECT_GT(p.at(b, h, r, e), 0.0f);
          sum += p.at(b, h, r, e);
        }
        EXPECT_NEAR(sum, 1.0, 1e-5);
      }
}

TEST(SoftmaxRows, StableForLargeMagnitudes) {
  TensorF c(1, 1, 1, 3);
  c.at(0, 0, 0, 0) = 1000.0f;
  c.at(0, 0, 0, 1) = 1000.0f;
  c.at(0, 0, 0, 2) = -1000.0f;
  const TensorF p = SoftmaxRows(c);
  EXPECT_NEAR(p.at(0, 0, 0, 0), 0.5f, 1e-6);
  EXPECT_NEAR(p.at(0, 0, 0, 1), 0.5f, 1e-6);
  EXPECT_NEAR(p.at(0, 0, 0, 2), 0.0f, 1e-6);
  EXPECT_FALSE(std::isnan(p.at(0, 0, 0, 0)));
}

TEST(SoftmaxRows, UniformInputGivesUniformOutput) {
  TensorF c(1, 1, 2, 5);
  c.Fill(3.25f);
  const TensorF p = SoftmaxRows(c);
  for (std::int64_t e = 0; e < 5; ++e) {
    EXPECT_NEAR(p.at(0, 0, 0, e), 0.2f, 1e-6);
  }
}

TEST(ReferenceAttention, MatchesManualComposition) {
  const TensorF q = Random({1, 2, 6, 4}, 2);
  const TensorF k = Random({1, 2, 6, 4}, 3);
  const TensorF v = Random({1, 2, 6, 4}, 4);
  const TensorF o = ReferenceAttention(q, k, v);
  const TensorF expected = MatMul(SoftmaxRows(MatMulTransposed(q, k)), v);
  EXPECT_LT(MaxAbsDiff(o, expected), kTol);
}

TEST(ReferenceAttention, ScaleApplied) {
  const TensorF q = Random({1, 1, 4, 4}, 5);
  const TensorF k = Random({1, 1, 4, 4}, 6);
  const TensorF v = Random({1, 1, 4, 4}, 7);
  const float scale = 0.5f;
  const TensorF o = ReferenceAttention(q, k, v, scale);
  TensorF c = MatMulTransposed(q, k);
  for (std::int64_t i = 0; i < c.elements(); ++i) c.data()[i] *= scale;
  const TensorF expected = MatMul(SoftmaxRows(c), v);
  EXPECT_LT(MaxAbsDiff(o, expected), kTol);
}

TEST(ReferenceAttention, IdentityValueSelection) {
  // With one-hot rows in QK^T dominated by a single huge score, attention
  // selects the corresponding V row.
  TensorF q(1, 1, 2, 2), k(1, 1, 2, 2), v(1, 1, 2, 3);
  q.at(0, 0, 0, 0) = 100.0f;  // row 0 aligns with k row 0
  q.at(0, 0, 1, 1) = 100.0f;  // row 1 aligns with k row 1
  k.at(0, 0, 0, 0) = 1.0f;
  k.at(0, 0, 1, 1) = 1.0f;
  for (std::int64_t e = 0; e < 3; ++e) {
    v.at(0, 0, 0, e) = static_cast<float>(e);
    v.at(0, 0, 1, e) = static_cast<float>(10 + e);
  }
  const TensorF o = ReferenceAttention(q, k, v);
  for (std::int64_t e = 0; e < 3; ++e) {
    EXPECT_NEAR(o.at(0, 0, 0, e), static_cast<float>(e), 1e-4);
    EXPECT_NEAR(o.at(0, 0, 1, e), static_cast<float>(10 + e), 1e-4);
  }
}

// --- Tiled kernels (Algorithms 2-4) against the untiled references. ---

struct TiledCase {
  std::int64_t n;
  std::int64_t e;
  std::int64_t nkv;
};

class TiledKernelTest : public testing::TestWithParam<TiledCase> {};

TEST_P(TiledKernelTest, TiledQKTMatchesReference) {
  const auto& tc = GetParam();
  const TensorF q = Random({1, 2, tc.n, tc.e}, 11);
  const TensorF k = Random({1, 2, tc.n, tc.e}, 12);
  EXPECT_LT(MaxAbsDiff(TiledQKT(q, k, tc.nkv), MatMulTransposed(q, k)), kTol);
}

TEST_P(TiledKernelTest, TiledSoftmaxMatchesReference) {
  const auto& tc = GetParam();
  const TensorF c = Random({1, 2, tc.n, tc.n}, 13, -3.0f, 3.0f);
  EXPECT_LT(MaxAbsDiff(TiledSoftmax(c), SoftmaxRows(c)), kTol);
}

TEST_P(TiledKernelTest, TiledPVMatchesReference) {
  const auto& tc = GetParam();
  const TensorF c = Random({1, 2, tc.n, tc.n}, 14, -3.0f, 3.0f);
  const TensorF p = SoftmaxRows(c);
  const TensorF v = Random({1, 2, tc.n, tc.e}, 15);
  EXPECT_LT(MaxAbsDiff(TiledPV(p, v, tc.nkv), MatMul(p, v)), kTol);
}

TEST_P(TiledKernelTest, OnlineSoftmaxMatchesReference) {
  const auto& tc = GetParam();
  const TensorF c = Random({1, 2, tc.n, tc.n}, 16, -5.0f, 5.0f);
  EXPECT_LT(MaxAbsDiff(OnlineSoftmaxRows(c, tc.nkv), SoftmaxRows(c)), kTol);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TiledKernelTest,
    testing::Values(TiledCase{8, 4, 8},    // single block
                    TiledCase{8, 4, 3},    // non-divisor block
                    TiledCase{16, 8, 4},   // even split
                    TiledCase{17, 5, 4},   // odd sizes
                    TiledCase{32, 16, 1},  // one column at a time
                    TiledCase{12, 6, 5}),  // ragged tail
    [](const testing::TestParamInfo<TiledCase>& info) {
      return "n" + std::to_string(info.param.n) + "_e" + std::to_string(info.param.e) +
             "_kv" + std::to_string(info.param.nkv);
    });

TEST(TiledKernels, RejectInvalidBlockSize) {
  const TensorF q = Random({1, 1, 4, 4}, 17);
  const TensorF k = Random({1, 1, 4, 4}, 18);
  EXPECT_THROW(TiledQKT(q, k, 0), Error);
  EXPECT_THROW(TiledPV(q, k, 0), Error);
  EXPECT_THROW(OnlineSoftmaxRows(q, 0), Error);
}

}  // namespace
}  // namespace mas
