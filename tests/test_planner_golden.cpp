// Acceptance gate for the Planner facade (ISSUE 3): all 84 Table-1 network x
// scheduler SimResults must remain bit-identical to the pinned seed goldens
// when produced through mas::Planner — and a warm planner (plan store
// round-tripped through JSON) must reproduce the identical tilings with ZERO
// new search evaluations.
//
// Reuses tests/golden_engine_table1.inc (see test_engine_golden.cpp for the
// capture/regeneration protocol).
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dataflow/workloads.h"
#include "planner/planner.h"
#include "schedulers/registry.h"
#include "sim/hardware_config.h"

namespace mas {
namespace {

struct GoldenRow {
  const char* network;
  int method;
  std::int64_t tiling[4];  // bb, hh, nq, nkv
  std::uint64_t cycles;
  double energy[5];  // dram, l1, l0, mac, vec (pJ)
  std::int64_t dram_read_bytes;
  std::int64_t dram_write_bytes;
  std::vector<std::uint64_t> busy;        // per resource: dma, mac0, vec0, ...
  std::vector<std::uint64_t> task_count;  // same order
};

const std::vector<GoldenRow>& GoldenRows() {
  static const std::vector<GoldenRow> rows = {
#include "golden_engine_table1.inc"
  };
  return rows;
}

TEST(PlannerGolden, AllTable1RowsBitIdenticalAndWarmStartIsFree) {
  const sim::HardwareConfig hw = sim::EdgeSimConfig();
  Planner planner;

  // Cold pass: every (network, scheduler) pair planned and simulated through
  // the facade must reproduce the pinned seed results bit-for-bit.
  for (const GoldenRow& row : GoldenRows()) {
    const std::string method =
        SchedulerRegistry::Instance().Info(static_cast<Method>(row.method)).name;
    const NetworkWorkload net = FindNetwork(row.network);
    const TuningPlan plan = planner.Plan(net.shape, method, hw);
    ASSERT_EQ(plan.tiling.bb, row.tiling[0]) << method << " on " << row.network;
    ASSERT_EQ(plan.tiling.hh, row.tiling[1]) << method << " on " << row.network;
    ASSERT_EQ(plan.tiling.nq, row.tiling[2]) << method << " on " << row.network;
    ASSERT_EQ(plan.tiling.nkv, row.tiling[3]) << method << " on " << row.network;

    const sim::SimResult r = planner.Simulate(plan, hw);
    EXPECT_EQ(r.cycles, row.cycles) << method << " on " << row.network;
    EXPECT_EQ(r.energy.dram_pj, row.energy[0]);
    EXPECT_EQ(r.energy.l1_pj, row.energy[1]);
    EXPECT_EQ(r.energy.l0_pj, row.energy[2]);
    EXPECT_EQ(r.energy.mac_pe_pj, row.energy[3]);
    EXPECT_EQ(r.energy.vec_pe_pj, row.energy[4]);
    EXPECT_EQ(r.dram_read_bytes, row.dram_read_bytes);
    EXPECT_EQ(r.dram_write_bytes, row.dram_write_bytes);
    ASSERT_EQ(r.resources.size(), row.busy.size());
    for (std::size_t i = 0; i < row.busy.size(); ++i) {
      EXPECT_EQ(r.resources[i].busy_cycles, row.busy[i]) << r.resources[i].name;
      EXPECT_EQ(r.resources[i].task_count, row.task_count[i]) << r.resources[i].name;
    }
    // The plan's predicted latency is the simulated one.
    EXPECT_EQ(plan.predicted_cycles, static_cast<double>(r.cycles));
  }
  EXPECT_EQ(planner.plans_tuned(), static_cast<std::int64_t>(GoldenRows().size()));
  EXPECT_GT(planner.search_evaluations(), 0);

  // Persist the store through its JSON representation, then replan every row
  // on a fresh planner: identical tilings, zero search evaluations.
  const std::string json = planner.store().ToJson();
  Planner warm;
  warm.store() = PlanStore::FromJson(json);
  for (const GoldenRow& row : GoldenRows()) {
    const std::string method =
        SchedulerRegistry::Instance().Info(static_cast<Method>(row.method)).name;
    const NetworkWorkload net = FindNetwork(row.network);
    const TuningPlan plan = warm.Plan(net.shape, method, hw);
    EXPECT_EQ(plan.tiling.bb, row.tiling[0]) << method << " on " << row.network;
    EXPECT_EQ(plan.tiling.hh, row.tiling[1]);
    EXPECT_EQ(plan.tiling.nq, row.tiling[2]);
    EXPECT_EQ(plan.tiling.nkv, row.tiling[3]);
  }
  EXPECT_EQ(warm.search_evaluations(), 0) << "warm replans must not search";
  EXPECT_EQ(warm.plans_tuned(), 0);
  EXPECT_EQ(warm.plans_reused(), static_cast<std::int64_t>(GoldenRows().size()));
  // And the warm store still serializes to the identical bytes.
  EXPECT_EQ(warm.store().ToJson(), json);
}

}  // namespace
}  // namespace mas
