#include "sim/hardware_config.h"

#include <gtest/gtest.h>

namespace mas::sim {
namespace {

TEST(HardwareConfig, EdgeSimMatchesPaperFig4) {
  const HardwareConfig hw = EdgeSimConfig();
  EXPECT_EQ(hw.name, "edge_sim");
  EXPECT_DOUBLE_EQ(hw.frequency_ghz, 3.75);
  EXPECT_EQ(hw.technology_nm, 16);
  EXPECT_EQ(hw.l1_bytes, 5 * 1024 * 1024);
  EXPECT_EQ(hw.dram_bytes, 6LL * 1024 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(hw.dram_gb_per_s, 30.0);
  ASSERT_EQ(hw.num_cores(), 2);
  for (const auto& core : hw.cores) {
    EXPECT_EQ(core.mac_rows, 16);
    EXPECT_EQ(core.mac_cols, 16);
    EXPECT_EQ(core.vec_lanes, 256);
  }
}

TEST(HardwareConfig, EdgeSimBandwidthIsEightBytesPerCycle) {
  const HardwareConfig hw = EdgeSimConfig();
  EXPECT_DOUBLE_EQ(hw.DramBytesPerCycle(), 8.0);
}

TEST(HardwareConfig, EdgeSimTotalMacThroughput) {
  // Two 16x16 meshes: 512 MACs/cycle — the Table 2 compute floor.
  EXPECT_EQ(EdgeSimConfig().TotalMacThroughput(), 512);
}

TEST(HardwareConfig, DavinciNpuHasThreeHeterogeneousCores) {
  const HardwareConfig npu = DavinciNpuConfig();
  ASSERT_EQ(npu.num_cores(), 3);
  // 2x Ascend Lite + 1x Ascend Tiny (paper §5.1).
  EXPECT_EQ(npu.cores[0].mac_rows, 16);
  EXPECT_EQ(npu.cores[1].mac_rows, 16);
  EXPECT_EQ(npu.cores[2].mac_rows, 8);
  EXPECT_LT(npu.cores[2].vec_lanes, npu.cores[0].vec_lanes);
}

TEST(HardwareConfig, SoftmaxLaneCostSumsPrimitives) {
  CoreConfig core;
  core.vec_cost_max = 1;
  core.vec_cost_sub = 2;
  core.vec_cost_exp = 3;
  core.vec_cost_sum = 4;
  core.vec_cost_div = 5;
  EXPECT_EQ(core.SoftmaxLaneCostPerElement(), 15);
}

TEST(HardwareConfig, DescribeMentionsKeyParameters) {
  const std::string desc = EdgeSimConfig().Describe();
  EXPECT_NE(desc.find("5 MB"), std::string::npos);
  EXPECT_NE(desc.find("30 GB/s"), std::string::npos);
  EXPECT_NE(desc.find("16x16"), std::string::npos);
  EXPECT_NE(desc.find("256 lanes"), std::string::npos);
}

}  // namespace
}  // namespace mas::sim
