#include "trace/trace.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "common/json_reader.h"
#include "dataflow/workloads.h"
#include "schedulers/scheduler.h"
#include "sim/hardware_config.h"

namespace mas::trace {
namespace {

// Hand-built three-task timeline with cycle counts divisible by 3750
// (= 3.75 GHz * 1e3 cycles/µs), so every µs value in the exporters is an
// exact small integer and the goldens below are byte-stable.
sim::SimResult SyntheticResult() {
  sim::SimResult r;
  r.cycles = 15000;
  r.timeline = {
      {"load K", sim::ResourceKind::kDma, 0, 0, 3750},
      {"qk", sim::ResourceKind::kMac, 0, 3750, 11250},
      {"softmax", sim::ResourceKind::kVec, 0, 11250, 15000},
  };
  return r;
}

// A small recorded MAS schedule shared by most tests.
sim::SimResult RecordedResult() {
  const AttentionShape shape{"tiny", 1, 2, 64, 16};
  const auto mas = MakeScheduler(Method::kMas);
  return mas->Simulate(shape, TilingConfig{1, 1, 32, 32}, sim::EdgeSimConfig(),
                       sim::EnergyModel{}, /*record_timeline=*/true);
}

sim::SimResult UnrecordedResult() {
  const AttentionShape shape{"tiny", 1, 2, 64, 16};
  const auto mas = MakeScheduler(Method::kMas);
  return mas->Simulate(shape, TilingConfig{1, 1, 32, 32}, sim::EdgeSimConfig(),
                       sim::EnergyModel{});
}

TEST(AsciiGanttTest, RendersOneLanePerResource) {
  const auto r = RecordedResult();
  const std::string gantt = AsciiGantt(r);
  EXPECT_NE(gantt.find("DMA"), std::string::npos);
  EXPECT_NE(gantt.find("MAC0"), std::string::npos);
  EXPECT_NE(gantt.find("VEC0"), std::string::npos);
  // Busy markers must appear (the schedule does real work).
  EXPECT_NE(gantt.find('#'), std::string::npos);
}

TEST(AsciiGanttTest, RespectsWidth) {
  const auto r = RecordedResult();
  GanttOptions opts;
  opts.width = 40;
  opts.show_names = false;
  const std::string gantt = AsciiGantt(r, opts);
  // Every lane line is label(6) + '|' + width + '|'.
  std::size_t pos = gantt.find('\n') + 1;  // skip header
  while (pos < gantt.size()) {
    const std::size_t end = gantt.find('\n', pos);
    if (end == std::string::npos) break;
    EXPECT_EQ(end - pos, 6u + 1u + 40u + 1u);
    pos = end + 1;
  }
}

TEST(AsciiGanttTest, WindowClipping) {
  const auto r = RecordedResult();
  GanttOptions opts;
  opts.from = r.cycles / 2;
  opts.to = r.cycles;
  const std::string gantt = AsciiGantt(r, opts);
  EXPECT_NE(gantt.find(std::to_string(r.cycles / 2)), std::string::npos);
}

TEST(AsciiGanttTest, ThrowsWithoutTimeline) {
  const auto r = UnrecordedResult();
  EXPECT_THROW(AsciiGantt(r), Error);
}

TEST(AsciiGanttTest, RejectsTinyWidth) {
  const auto r = RecordedResult();
  GanttOptions opts;
  opts.width = 2;
  EXPECT_THROW(AsciiGantt(r, opts), Error);
}

TEST(ChromeTraceTest, ProducesValidShapedJson) {
  const auto r = RecordedResult();
  const std::string json = ChromeTraceJson(r, 3.75);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  // Balanced braces/brackets (cheap structural sanity check).
  std::int64_t depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(ChromeTraceTest, GoldenDocumentAt3750MHzCycleBoundaries) {
  // Full-document golden: lane metadata in (core, kind) order, then the
  // timeline entries as "X" events with exact-µs timestamps at 3.75 GHz.
  const std::string json = ChromeTraceJson(SyntheticResult(), 3.75);
  EXPECT_EQ(json,
            "{\"traceEvents\":["
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1,"
            "\"args\":{\"name\":\"DMA\"}},"
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":2,"
            "\"args\":{\"name\":\"MAC0\"}},"
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":3,"
            "\"args\":{\"name\":\"VEC0\"}},"
            "{\"name\":\"load K\",\"cat\":\"DMA\",\"ph\":\"X\",\"ts\":0,\"dur\":1,"
            "\"pid\":0,\"tid\":1},"
            "{\"name\":\"qk\",\"cat\":\"MAC\",\"ph\":\"X\",\"ts\":1,\"dur\":2,"
            "\"pid\":0,\"tid\":2},"
            "{\"name\":\"softmax\",\"cat\":\"VEC\",\"ph\":\"X\",\"ts\":3,\"dur\":1,"
            "\"pid\":0,\"tid\":3}"
            "],\"displayTimeUnit\":\"ns\"}");
}

TEST(ChromeTraceTest, ParsesWithJsonReaderAndConvertsMicroseconds) {
  // A real recorded schedule: the document must be strictly valid JSON
  // (common/json_reader throws on anything malformed) and every complete
  // event's ts/dur must be the cycle values divided by GHz * 1e3.
  const auto r = RecordedResult();
  const double ghz = 3.75;
  const json::Value doc = json::Parse(ChromeTraceJson(r, ghz));
  const auto& events = doc.Get("traceEvents").AsArray();
  ASSERT_GT(events.size(), r.timeline.size());  // + one metadata row per lane

  std::size_t complete = 0;
  for (const auto& event : events) {
    if (event.Get("ph").AsString() != "X") continue;
    const auto& entry = r.timeline[complete++];
    EXPECT_DOUBLE_EQ(event.Get("ts").AsDouble(),
                     static_cast<double>(entry.start) / (ghz * 1e3));
    EXPECT_DOUBLE_EQ(event.Get("dur").AsDouble(),
                     static_cast<double>(entry.end - entry.start) / (ghz * 1e3));
    EXPECT_EQ(event.Get("pid").AsInt64(), 0);
  }
  EXPECT_EQ(complete, r.timeline.size());
}

TEST(AsciiGanttTest, GoldenRenderingAndMakespanDefault) {
  GanttOptions opts;
  opts.width = 10;
  opts.show_names = false;
  // to = 0 means "clip at the makespan".
  const std::string gantt = AsciiGantt(SyntheticResult(), opts);
  EXPECT_EQ(gantt,
            "cycles [0, 15000), 1500 cycles/column\n"
            "DMA   |##+.......|\n"
            "MAC0  |..+####+..|\n"
            "VEC0  |.......+##|\n");

  GanttOptions explicit_to = opts;
  explicit_to.to = 15000;
  EXPECT_EQ(AsciiGantt(SyntheticResult(), explicit_to), gantt);
}

TEST(AsciiGanttTest, GoldenWindowClipsEntries) {
  GanttOptions opts;
  opts.width = 10;
  opts.show_names = false;
  opts.from = 3750;
  opts.to = 11250;
  // Only the MAC task intersects [3750, 11250); the DMA and VEC tasks clip
  // to empty and leave idle lanes.
  EXPECT_EQ(AsciiGantt(SyntheticResult(), opts),
            "cycles [3750, 11250), 750 cycles/column\n"
            "DMA   |..........|\n"
            "MAC0  |##########|\n"
            "VEC0  |..........|\n");
}

TEST(ChromeTraceTest, EventCountMatchesTimeline) {
  const auto r = RecordedResult();
  const std::string json = ChromeTraceJson(r, 3.75);
  std::size_t events = 0, pos = 0;
  while ((pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos) {
    ++events;
    pos += 8;
  }
  EXPECT_EQ(events, r.timeline.size());
}

TEST(ChromeTraceTest, RejectsNonPositiveFrequency) {
  const auto r = RecordedResult();
  EXPECT_THROW(ChromeTraceJson(r, 0.0), Error);
}

TEST(TimelineCsvTest, HeaderAndRowCount) {
  const auto r = RecordedResult();
  const std::string csv = TimelineCsv(r);
  EXPECT_EQ(csv.find("name,resource,core,start_cycle,end_cycle,duration\n"), 0u);
  const std::size_t rows = static_cast<std::size_t>(
      std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(rows, r.timeline.size() + 1);  // + header
}

TEST(TimelineCsvTest, DurationsConsistent) {
  const auto r = RecordedResult();
  for (const auto& e : r.timeline) {
    EXPECT_LE(e.start, e.end);
  }
}

TEST(SummarizeTest, LaneAccountingMatchesEngineStats) {
  const auto r = RecordedResult();
  const TimelineSummary summary = Summarize(r);
  EXPECT_EQ(summary.makespan, r.cycles);
  // Busy cycles per lane must agree with the engine's resource stats.
  for (const auto& lane : summary.lanes) {
    for (const auto& res : r.resources) {
      const bool same_kind = lane.resource == sim::ResourceKindName(res.kind);
      const bool same_core = res.kind == sim::ResourceKind::kDma || lane.core == res.core;
      if (same_kind && same_core && res.task_count > 0) {
        EXPECT_EQ(lane.busy_cycles, res.busy_cycles) << lane.resource << lane.core;
        EXPECT_EQ(lane.task_count, res.task_count);
      }
    }
  }
}

TEST(SummarizeTest, UtilizationBounded) {
  const TimelineSummary summary = Summarize(RecordedResult());
  for (const auto& lane : summary.lanes) {
    EXPECT_GE(lane.utilization, 0.0);
    EXPECT_LE(lane.utilization, 1.0 + 1e-9);
    EXPECT_LE(lane.first_start, lane.last_end);
    EXPECT_LE(lane.last_end, summary.makespan);
  }
}

TEST(SummarizeTest, MasOverlapsMacAndVec) {
  // The point of MAS: nonzero MAC/VEC co-busy time.
  const TimelineSummary summary = Summarize(RecordedResult());
  EXPECT_GT(summary.mac_vec_overlap_cycles, 0u);
  EXPECT_LE(summary.mac_vec_overlap_cycles, summary.makespan);
}

TEST(SummarizeTest, FlatOverlapsLessThanMas) {
  // Fig. 1 quantified: on the same workload/tiling, FLAT's sequential stages
  // leave strictly less MAC/VEC overlap than MAS's stream pipeline.
  const AttentionShape shape{"tiny", 1, 4, 128, 32};
  const TilingConfig tiling{1, 1, 32, 64};
  const auto hw = sim::EdgeSimConfig();
  const sim::EnergyModel em;
  const auto flat_r =
      MakeScheduler(Method::kFlat)->Simulate(shape, tiling, hw, em, true);
  const auto mas_r = MakeScheduler(Method::kMas)->Simulate(shape, tiling, hw, em, true);
  const auto flat_s = Summarize(flat_r);
  const auto mas_s = Summarize(mas_r);
  EXPECT_LT(flat_s.mac_vec_overlap_cycles, mas_s.mac_vec_overlap_cycles);
}

TEST(SummarizeTest, ToStringMentionsEveryLane) {
  const TimelineSummary summary = Summarize(RecordedResult());
  const std::string text = summary.ToString();
  EXPECT_NE(text.find("makespan"), std::string::npos);
  EXPECT_NE(text.find("MAC/VEC overlap"), std::string::npos);
  for (const auto& lane : summary.lanes) {
    EXPECT_NE(text.find(lane.resource), std::string::npos);
  }
}

TEST(WriteFileTest, RoundTrips) {
  const std::string path = testing::TempDir() + "/mas_trace_test.txt";
  WriteFile(path, "hello\nworld\n");
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "hello\nworld\n");
  std::remove(path.c_str());
}

TEST(WriteFileTest, ThrowsOnBadPath) {
  EXPECT_THROW(WriteFile("/nonexistent-dir-zz/x.txt", "data"), Error);
}

}  // namespace
}  // namespace mas::trace
