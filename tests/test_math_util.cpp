#include "common/math_util.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace mas {
namespace {

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 4), 0);
  EXPECT_EQ(CeilDiv(1, 4), 1);
  EXPECT_EQ(CeilDiv(4, 4), 1);
  EXPECT_EQ(CeilDiv(5, 4), 2);
  EXPECT_EQ(CeilDiv(512, 16), 32);
  EXPECT_EQ(CeilDiv<std::int64_t>(196, 16), 13);
}

TEST(MathUtil, RoundUp) {
  EXPECT_EQ(RoundUp(0, 8), 0);
  EXPECT_EQ(RoundUp(1, 8), 8);
  EXPECT_EQ(RoundUp(8, 8), 8);
  EXPECT_EQ(RoundUp(9, 8), 16);
}

TEST(MathUtil, GeoMeanBasics) {
  EXPECT_DOUBLE_EQ(GeoMean({}), 0.0);
  EXPECT_DOUBLE_EQ(GeoMean({4.0}), 4.0);
  EXPECT_NEAR(GeoMean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(GeoMean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(MathUtil, GeoMeanRejectsNonPositive) {
  EXPECT_THROW(GeoMean({1.0, 0.0}), Error);
  EXPECT_THROW(GeoMean({-1.0}), Error);
}

TEST(MathUtil, DivisorsOfTwelve) {
  const std::vector<std::int64_t> expected = {1, 2, 3, 4, 6, 12};
  EXPECT_EQ(Divisors(12), expected);
}

TEST(MathUtil, DivisorsOfPrime) {
  const std::vector<std::int64_t> expected = {1, 13};
  EXPECT_EQ(Divisors(13), expected);
}

TEST(MathUtil, DivisorsOfOne) {
  const std::vector<std::int64_t> expected = {1};
  EXPECT_EQ(Divisors(1), expected);
}

TEST(MathUtil, DivisorsRejectsNonPositive) {
  EXPECT_THROW(Divisors(0), Error);
  EXPECT_THROW(Divisors(-4), Error);
}

TEST(MathUtil, TileCandidatesIncludeDivisorsAndPowersOfTwo) {
  const auto cands = TileCandidates(12);
  // Divisors of 12 plus powers of two <= 12: {1,2,3,4,6,8,12}.
  const std::vector<std::int64_t> expected = {1, 2, 3, 4, 6, 8, 12};
  EXPECT_EQ(cands, expected);
}

TEST(MathUtil, TileCandidatesSortedUnique) {
  for (std::int64_t n : {1, 2, 7, 196, 512, 4096}) {
    const auto cands = TileCandidates(n);
    ASSERT_FALSE(cands.empty());
    EXPECT_EQ(cands.front(), 1);
    EXPECT_EQ(cands.back(), n);
    for (std::size_t i = 1; i < cands.size(); ++i) {
      EXPECT_LT(cands[i - 1], cands[i]);
      EXPECT_LE(cands[i], n);
    }
  }
}

}  // namespace
}  // namespace mas
