// Arrival-model tests: --arrival grammar parsing, registry semantics,
// calibration, stream determinism, the pinned fixed-seed goldens
// (tests/golden_arrivals.inc — regenerate with tools/gen_golden_arrivals),
// and RequestTrace::FromArrivalModel's seed-stream separation.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/arrival.h"
#include "serve/trace.h"

namespace mas::serve {
namespace {

std::unique_ptr<ArrivalModel> Make(const std::string& spec_text,
                                   ArrivalCalibration calibration = {}) {
  return ArrivalModelRegistry::Instance().Create(ArrivalSpec::Parse(spec_text), calibration);
}

// ----------------------------------------------------------------- grammar

TEST(ArrivalSpec, ParsesModelAndParams) {
  const ArrivalSpec bare = ArrivalSpec::Parse("poisson");
  EXPECT_EQ(bare.model, "poisson");
  EXPECT_TRUE(bare.params.empty());
  EXPECT_EQ(bare.ToString(), "poisson");

  const ArrivalSpec full = ArrivalSpec::Parse("bursty:rate=64,burst=8,on=0.25");
  EXPECT_EQ(full.model, "bursty");
  ASSERT_EQ(full.params.size(), 3u);
  EXPECT_DOUBLE_EQ(full.Param("rate", -1.0), 64.0);
  EXPECT_DOUBLE_EQ(full.Param("burst", -1.0), 8.0);
  EXPECT_DOUBLE_EQ(full.Param("on", -1.0), 0.25);
  EXPECT_TRUE(full.Has("rate"));
  EXPECT_FALSE(full.Has("off"));
  EXPECT_DOUBLE_EQ(full.Param("off", 7.5), 7.5);  // fallback when absent
  EXPECT_EQ(full.ToString(), "bursty:rate=64,burst=8,on=0.25");
  // ToString round-trips through Parse.
  EXPECT_EQ(ArrivalSpec::Parse(full.ToString()).ToString(), full.ToString());
}

TEST(ArrivalSpec, WithUpsertsParams) {
  const ArrivalSpec base = ArrivalSpec::Parse("poisson:rate=64");
  EXPECT_EQ(base.With("rate", 128.0).ToString(), "poisson:rate=128");
  EXPECT_EQ(base.With("rate", 128.0).params.size(), 1u);  // replaced, not appended
  EXPECT_EQ(ArrivalSpec::Parse("poisson").With("rate", 32.0).ToString(), "poisson:rate=32");
}

TEST(ArrivalSpec, RejectsMalformedText) {
  EXPECT_THROW(ArrivalSpec::Parse(""), Error);
  EXPECT_THROW(ArrivalSpec::Parse(":rate=64"), Error);        // no model name
  EXPECT_THROW(ArrivalSpec::Parse("poisson:"), Error);        // empty param list
  EXPECT_THROW(ArrivalSpec::Parse("poisson:rate"), Error);    // not key=value
  EXPECT_THROW(ArrivalSpec::Parse("poisson:rate="), Error);   // empty value
  EXPECT_THROW(ArrivalSpec::Parse("poisson:=64"), Error);     // empty key
  EXPECT_THROW(ArrivalSpec::Parse("poisson:rate=abc"), Error);
  EXPECT_THROW(ArrivalSpec::Parse("poisson:rate=1e999"), Error);  // overflow
  EXPECT_THROW(ArrivalSpec::Parse("poisson:rate=inf"), Error);
  EXPECT_THROW(ArrivalSpec::Parse("poisson:rate=nan"), Error);
  EXPECT_THROW(ArrivalSpec::Parse("poisson:rate=64,rate=32"), Error);  // duplicate key
}

// ---------------------------------------------------------------- registry

TEST(ArrivalRegistry, CatalogsBuiltins) {
  ArrivalModelRegistry& registry = ArrivalModelRegistry::Instance();
  const std::vector<ArrivalModelInfo> models = registry.List();
  ASSERT_EQ(models.size(), 3u);
  EXPECT_EQ(models[0].name, "poisson");
  EXPECT_EQ(models[1].name, "bursty");
  EXPECT_EQ(models[2].name, "diurnal");
  for (const ArrivalModelInfo& info : models) {
    EXPECT_FALSE(info.summary.empty()) << info.name;
    EXPECT_FALSE(info.params.empty()) << info.name;
    EXPECT_NE(registry.Find(info.name), nullptr);
  }
  EXPECT_EQ(registry.Find("bogus"), nullptr);
}

TEST(ArrivalRegistry, UnknownModelListsCatalog) {
  try {
    Make("bogus");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'poisson'"), std::string::npos) << what;
    EXPECT_NE(what.find("'diurnal'"), std::string::npos) << what;
  }
}

TEST(ArrivalRegistry, FactoriesValidateParams) {
  EXPECT_THROW(Make("poisson:rte=64"), Error);        // typoed key
  EXPECT_THROW(Make("poisson:rate=0"), Error);        // non-positive rate
  EXPECT_THROW(Make("poisson:rate=-5"), Error);
  EXPECT_THROW(Make("bursty:burst=0.5"), Error);      // burst < 1
  EXPECT_THROW(Make("bursty:on=0"), Error);           // degenerate phase
  EXPECT_THROW(Make("diurnal:depth=1"), Error);       // depth must be < 1
  EXPECT_THROW(Make("diurnal:depth=-0.1"), Error);
  EXPECT_THROW(Make("diurnal:period=0"), Error);
  EXPECT_NO_THROW(Make("poisson"));                   // defaults are valid
  EXPECT_NO_THROW(Make("bursty"));
  EXPECT_NO_THROW(Make("diurnal"));
}

TEST(ArrivalCalibrationTest, TicksPerSecondAndValidation) {
  ArrivalCalibration calibration;  // 3.75 GHz, 1e6 cycles/tick
  EXPECT_DOUBLE_EQ(calibration.TicksPerSecond(), 3750.0);
  calibration.cycles_per_tick = 0.0;
  EXPECT_THROW(Make("poisson", calibration), Error);
  calibration.cycles_per_tick = 1e6;
  calibration.frequency_ghz = -1.0;
  EXPECT_THROW(Make("poisson", calibration), Error);
}

// ------------------------------------------------------------- generation

TEST(ArrivalGeneration, StreamsAreDeterministicAndSeedSensitive) {
  for (const char* spec : {"poisson:rate=64", "bursty:rate=64", "diurnal:rate=64"}) {
    // Fresh model per stream: bursty keeps phase state across calls.
    const std::vector<std::int64_t> a = GenerateArrivalTicks(*Make(spec), 64, 1);
    const std::vector<std::int64_t> b = GenerateArrivalTicks(*Make(spec), 64, 1);
    const std::vector<std::int64_t> c = GenerateArrivalTicks(*Make(spec), 64, 2);
    EXPECT_EQ(a, b) << spec;
    EXPECT_NE(a, c) << spec;
    // First arrival at the stream origin; ticks never decrease.
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a.front(), 0) << spec;
    for (std::size_t i = 1; i < a.size(); ++i) {
      EXPECT_GE(a[i], a[i - 1]) << spec << " at " << i;
    }
  }
}

TEST(ArrivalGeneration, RateScalesTheStream) {
  // 4x the offered rate should land the same count of arrivals in roughly a
  // quarter of the span — generous 2x tolerance, zero flakiness (fixed seed).
  const std::int64_t slow = GenerateArrivalTicks(*Make("poisson:rate=32"), 256, 9).back();
  const std::int64_t fast = GenerateArrivalTicks(*Make("poisson:rate=128"), 256, 9).back();
  EXPECT_GT(slow, 2 * fast);
}

TEST(ArrivalGeneration, GoldenPinnedStreams) {
  struct GoldenArrivalRow {
    const char* spec;
    std::uint64_t seed;
    std::int64_t ticks[32];
  };
  static const GoldenArrivalRow kRows[] = {
#include "golden_arrivals.inc"
  };
  for (const GoldenArrivalRow& row : kRows) {
    const std::vector<std::int64_t> ticks = GenerateArrivalTicks(*Make(row.spec), 32, row.seed);
    ASSERT_EQ(ticks.size(), 32u) << row.spec;
    for (std::size_t i = 0; i < 32; ++i) {
      EXPECT_EQ(ticks[i], row.ticks[i]) << row.spec << " tick " << i;
    }
  }
}

// ------------------------------------------------------- FromArrivalModel

TEST(ArrivalTraceBridge, FromArrivalModelUsesModelTicksAndSpecLengths) {
  SyntheticTraceSpec spec;
  spec.name = "open_loop";
  spec.requests = 24;
  spec.seed = 0xFEED;
  spec.prompt_min = 32;
  spec.prompt_max = 64;
  spec.decode_min = 2;
  spec.decode_max = 8;
  spec.max_arrival_gap = 1000;  // ignored: the model owns arrivals

  const RequestTrace trace = RequestTrace::FromArrivalModel(*Make("poisson:rate=64"), spec);
  ASSERT_EQ(trace.requests.size(), 24u);
  EXPECT_EQ(trace.name, "open_loop");
  trace.Validate();  // sorted, unique ids

  // Arrival ticks are exactly the model stream at the spec's seed.
  const std::vector<std::int64_t> ticks =
      GenerateArrivalTicks(*Make("poisson:rate=64"), 24, spec.seed);
  for (std::size_t i = 0; i < ticks.size(); ++i) {
    EXPECT_EQ(trace.requests[i].arrival_tick, ticks[i]) << i;
    EXPECT_GE(trace.requests[i].prompt_len, 32);
    EXPECT_LE(trace.requests[i].prompt_len, 64);
  }
  // Deterministic end to end.
  EXPECT_EQ(RequestTrace::FromArrivalModel(*Make("poisson:rate=64"), spec).ToJson(),
            trace.ToJson());
}

TEST(ArrivalTraceBridge, LengthStreamIsDecorrelatedFromArrivals) {
  SyntheticTraceSpec spec;
  spec.requests = 16;
  spec.seed = 0xBEEF;
  spec.prompt_min = 32;
  spec.prompt_max = 512;
  spec.decode_min = 1;
  spec.decode_max = 64;

  // Different arrival models, same seed: identical request lengths (the
  // length stream is salted off the arrival stream), different ticks.
  const RequestTrace poisson = RequestTrace::FromArrivalModel(*Make("poisson:rate=64"), spec);
  const RequestTrace bursty = RequestTrace::FromArrivalModel(*Make("bursty:rate=64"), spec);
  bool ticks_differ = false;
  for (std::size_t i = 0; i < poisson.requests.size(); ++i) {
    EXPECT_EQ(poisson.requests[i].prompt_len, bursty.requests[i].prompt_len) << i;
    EXPECT_EQ(poisson.requests[i].decode_len, bursty.requests[i].decode_len) << i;
    ticks_differ = ticks_differ ||
                   poisson.requests[i].arrival_tick != bursty.requests[i].arrival_tick;
  }
  EXPECT_TRUE(ticks_differ);
}

}  // namespace
}  // namespace mas::serve
