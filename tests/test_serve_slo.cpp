// SLO-engine tests: the nearest-rank percentile estimator against a naive
// integer-arithmetic oracle (property-tested across sizes, ties, and
// permutations), EvaluateSlo counting semantics, the adaptive session
// behaviors (pressure latch with a hand-checked switch tick, decode
// coalescing arithmetic, byte-determinism across jobs), the prefill-only
// TPOT edge, and the RunLoadSweep driver.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "common/rng.h"
#include "serve/slo.h"

namespace mas::serve {
namespace {

sim::HardwareConfig Hw() { return sim::EdgeSimConfig(); }

ServePlannerOptions FastOptions() {
  ServePlannerOptions options;
  options.min_context_bucket = 64;
  return options;
}

// Small, fast geometry for the session tests.
AttentionGeometry Geometry() { return BertBaseGeometry(); }

std::string ResultJson(const ServeResult& result) {
  JsonWriter json;
  json.BeginObject();
  result.WriteJson(json, Hw());
  json.EndObject();
  return json.Take();
}

// Naive oracle: sorted samples, rank via pure integer arithmetic (the
// implementation uses floating ceil — an independent computation path).
double OraclePercentile(std::vector<double> samples, std::int64_t p) {
  std::sort(samples.begin(), samples.end());
  const std::int64_t n = static_cast<std::int64_t>(samples.size());
  const std::int64_t rank = (p * n + 99) / 100;  // ceil(p*n/100)
  return samples[static_cast<std::size_t>(rank - 1)];
}

// ------------------------------------------------------------- percentiles

TEST(NearestRank, MatchesOracleAcrossSizesAndTies) {
  Rng rng(0x9E7C);
  for (std::int64_t n = 1; n <= 1000; ++n) {
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      // Coarse integer values force plenty of exact ties at every size.
      samples.push_back(static_cast<double>(rng.NextBelow(32)));
    }
    for (const std::int64_t p : {1, 25, 50, 95, 99, 100}) {
      ASSERT_DOUBLE_EQ(NearestRankPercentile(samples, static_cast<double>(p)),
                       OraclePercentile(samples, p))
          << "n=" << n << " p=" << p;
    }
  }
}

TEST(NearestRank, PermutationInvariant) {
  Rng rng(0x51AB);
  std::vector<double> samples;
  for (int i = 0; i < 257; ++i) samples.push_back(rng.NextDouble() * 1e6);
  const double p50 = NearestRankPercentile(samples, 50.0);
  const double p95 = NearestRankPercentile(samples, 95.0);
  const double p99 = NearestRankPercentile(samples, 99.0);
  for (int round = 0; round < 8; ++round) {
    const std::vector<std::size_t> perm = rng.Permutation(samples.size());
    std::vector<double> shuffled(samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) shuffled[i] = samples[perm[i]];
    EXPECT_DOUBLE_EQ(NearestRankPercentile(shuffled, 50.0), p50);
    EXPECT_DOUBLE_EQ(NearestRankPercentile(shuffled, 95.0), p95);
    EXPECT_DOUBLE_EQ(NearestRankPercentile(shuffled, 99.0), p99);
  }
}

TEST(NearestRank, EdgeCases) {
  EXPECT_DOUBLE_EQ(NearestRankPercentile({7.5}, 1.0), 7.5);    // single element
  EXPECT_DOUBLE_EQ(NearestRankPercentile({7.5}, 100.0), 7.5);
  EXPECT_DOUBLE_EQ(NearestRankPercentile({3, 3, 3, 3}, 99.0), 3.0);  // all equal
  EXPECT_DOUBLE_EQ(NearestRankPercentile({4, 1, 3, 2}, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(NearestRankPercentile({4, 1, 3, 2}, 0.001), 1.0);  // tiny p -> min
  // p50 of two samples is the LOWER one (rank ceil(0.5*2) = 1) — nearest
  // rank, not interpolation.
  EXPECT_DOUBLE_EQ(NearestRankPercentile({10, 20}, 50.0), 10.0);
  EXPECT_THROW(NearestRankPercentile({}, 50.0), Error);
  EXPECT_THROW(NearestRankPercentile({1.0}, 0.0), Error);
  EXPECT_THROW(NearestRankPercentile({1.0}, -5.0), Error);
  EXPECT_THROW(NearestRankPercentile({1.0}, 100.5), Error);
}

// ------------------------------------------------------------- EvaluateSlo

// Hand-built result: TTFT/TPOT follow from the stamped cycle fields.
ServeResult HandResult() {
  ServeResult result;
  auto add = [&](std::int64_t id, std::uint64_t arrival, std::uint64_t first,
                 std::uint64_t finish, std::int64_t decode_len) {
    RequestMetrics m;
    m.id = id;
    m.decode_len = decode_len;
    m.arrival_cycles = arrival;
    m.first_token_cycles = first;
    m.finish_cycles = finish;
    result.requests.push_back(m);
  };
  const double cycles_per_us = Hw().frequency_ghz * 1e3;  // 3750
  const auto us = [&](double v) { return static_cast<std::uint64_t>(v * cycles_per_us); };
  add(0, 0, us(100), us(100), 0);               // prefill-only, TTFT 100us
  add(1, 0, us(500), us(500) + 4 * us(50), 4);  // TTFT 500us, TPOT 50us
  add(2, 0, us(2000), us(2000) + 2 * us(400), 2);  // TTFT 2000us, TPOT 400us
  return result;
}

TEST(EvaluateSloTest, CountsAttainmentPerDimension) {
  SloTargets targets;
  targets.ttft_us = 1000.0;
  targets.tpot_us = 100.0;
  const SloReport report = EvaluateSlo(HandResult(), Hw(), targets);
  EXPECT_EQ(report.requests, 3);
  EXPECT_EQ(report.decode_requests, 2);
  EXPECT_EQ(report.ttft_ok, 2);   // 100, 500 pass; 2000 fails
  EXPECT_EQ(report.tpot_ok, 1);   // 50 passes; 400 fails
  EXPECT_EQ(report.joint_ok, 2);  // request 2 fails both dimensions
  EXPECT_DOUBLE_EQ(report.TtftAttainment(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(report.TpotAttainment(), 0.5);
  EXPECT_DOUBLE_EQ(report.JointAttainment(), 2.0 / 3.0);
}

TEST(EvaluateSloTest, TargetsAtTheBoundaryAreMet) {
  SloTargets targets;
  targets.ttft_us = 2000.0;  // == request 2's TTFT: <= passes
  targets.tpot_us = 400.0;
  const SloReport report = EvaluateSlo(HandResult(), Hw(), targets);
  EXPECT_EQ(report.ttft_ok, 3);
  EXPECT_EQ(report.tpot_ok, 2);
  EXPECT_EQ(report.joint_ok, 3);
}

TEST(EvaluateSloTest, UnsetTargetsAreVacuouslyMet) {
  const SloReport none = EvaluateSlo(HandResult(), Hw(), SloTargets{});
  EXPECT_EQ(none.joint_ok, 3);
  EXPECT_DOUBLE_EQ(none.TtftAttainment(), 1.0);
  EXPECT_DOUBLE_EQ(none.TpotAttainment(), 1.0);

  SloTargets ttft_only;
  ttft_only.ttft_us = 1000.0;
  const SloReport report = EvaluateSlo(HandResult(), Hw(), ttft_only);
  EXPECT_EQ(report.tpot_ok, 2);   // vacuous: every decode request passes
  EXPECT_EQ(report.joint_ok, 2);  // only TTFT binds

  const SloReport empty = EvaluateSlo(ServeResult{}, Hw(), ttft_only);
  EXPECT_DOUBLE_EQ(empty.TtftAttainment(), 1.0);  // no requests -> vacuous

  SloTargets bad;
  bad.ttft_us = -1.0;
  EXPECT_THROW(EvaluateSlo(HandResult(), Hw(), bad), Error);
}

// A request that never completed (shed, timed out, crashed) stays in every
// denominator and never counts ok — even when every target is unset. The
// vacuous-truth convention applies to unset TARGETS on completed requests,
// not to missing REQUESTS.
TEST(EvaluateSloTest, NonCompletedRequestsNeverCountOk) {
  ServeResult result = HandResult();  // 3 completed requests
  result.metrics.fault_layer_active = true;
  RequestMetrics shed;
  shed.id = 3;
  shed.decode_len = 4;  // intended length; it never produced a token
  shed.outcome = RequestOutcome::kShed;
  result.requests.push_back(shed);
  RequestMetrics crashed = shed;
  crashed.id = 4;
  crashed.outcome = RequestOutcome::kCrashed;
  result.requests.push_back(crashed);

  SloTargets targets;
  targets.ttft_us = 1000.0;
  const SloReport report = EvaluateSlo(result, Hw(), targets);
  EXPECT_TRUE(report.extended);
  EXPECT_EQ(report.requests, 5);        // shed/crashed stay in the denominator
  EXPECT_EQ(report.decode_requests, 4);
  EXPECT_EQ(report.ttft_ok, 2);         // only completed requests can pass
  EXPECT_EQ(report.joint_ok, 2);
  EXPECT_DOUBLE_EQ(report.TtftAttainment(), 2.0 / 5.0);

  // Unset targets are vacuous only for COMPLETED requests.
  const SloReport unset = EvaluateSlo(result, Hw(), SloTargets{});
  EXPECT_EQ(unset.joint_ok, 3);
  EXPECT_DOUBLE_EQ(unset.JointAttainment(), 3.0 / 5.0);
}

// The regression this contract exists for: a run where EVERYTHING was shed
// must score 0.0 attainment, not a vacuous 1.0 that reads as a perfect SLO.
TEST(EvaluateSloTest, AllShedRunScoresZeroAttainment) {
  ServeResult result;
  result.metrics.fault_layer_active = true;
  for (std::int64_t id = 0; id < 4; ++id) {
    RequestMetrics m;
    m.id = id;
    m.decode_len = 2;
    m.outcome = RequestOutcome::kShed;
    result.requests.push_back(m);
  }
  const SloReport report = EvaluateSlo(result, Hw(), SloTargets{});
  EXPECT_EQ(report.requests, 4);
  EXPECT_EQ(report.joint_ok, 0);
  EXPECT_DOUBLE_EQ(report.TtftAttainment(), 0.0);
  EXPECT_DOUBLE_EQ(report.TpotAttainment(), 0.0);
  EXPECT_DOUBLE_EQ(report.JointAttainment(), 0.0);
  EXPECT_EQ(report.goodput_tokens, 0);
}

TEST(EvaluateSloTest, GoodputCountsJointOkTokensAndGatesItsJson) {
  ServeResult result = HandResult();
  result.metrics.fault_layer_active = true;
  SloTargets targets;
  targets.ttft_us = 1000.0;
  const SloReport report = EvaluateSlo(result, Hw(), targets);
  // Requests 0 (prefill-only) and 1 (decode_len 4) pass; request 2 fails.
  EXPECT_EQ(report.goodput_tokens, (1 + 0) + (1 + 4));

  const auto slo_json = [&](const SloReport& r) {
    JsonWriter json;
    json.BeginObject();
    WriteSloJson(json, targets, r);
    json.EndObject();
    return json.Take();
  };
  EXPECT_NE(slo_json(report).find("\"goodput_tokens\""), std::string::npos);
  // Without the fault/resilience layer the SLO document keeps its old shape.
  const SloReport plain = EvaluateSlo(HandResult(), Hw(), targets);
  EXPECT_FALSE(plain.extended);
  EXPECT_EQ(slo_json(plain).find("\"goodput_tokens\""), std::string::npos);
}

// -------------------------------------------------------- adaptive session

TEST(AdaptiveSession, InvalidPoliciesFailFast) {
  Planner planner;
  ServePlanner serve_planner(planner, Hw(), Geometry(), FastOptions());
  ServeSessionOptions options;
  options.pressure.enabled = true;  // target left at 0
  EXPECT_THROW(ServeSession(serve_planner, options), Error);
  options.pressure.ttft_target_cycles = 1000.0;
  options.pressure.window = 0;
  EXPECT_THROW(ServeSession(serve_planner, options), Error);
  options.pressure.window = 4;
  options.pressure.relief_method = "bogus";
  EXPECT_THROW(ServeSession(serve_planner, options), Error);
  options.pressure.relief_method = "FLAT";
  EXPECT_NO_THROW(ServeSession(serve_planner, options));
}

// Hand-checked pressure latch: max_batch=1 serializes the rounds, so the
// first TTFT sample lands when round 0's prefill retires and the policy
// (target 1 cycle, unmeetable) fires at the start of round 1 — the switch
// tick is exactly 1, and every decode after it runs under the relief method.
TEST(AdaptiveSession, PressureSwitchesAtTheExpectedTick) {
  RequestTrace trace;
  trace.requests = {
      {0, 0, 64, 1, 1},  // round 0: prefill (TTFT sample) -> round 1: decode
      {1, 0, 64, 1, 1},  // rounds 2, 3
      {2, 0, 64, 0, 1},  // round 4: prefill-only
  };

  ServePlannerOptions planner_options = FastOptions();
  planner_options.decode_method = "MAS-Attention";  // relief switches away from this
  Planner planner;
  ServePlanner serve_planner(planner, Hw(), Geometry(), planner_options);
  ServeSessionOptions options;
  options.max_batch = 1;
  options.pressure.enabled = true;
  options.pressure.ttft_target_cycles = 1.0;  // any real prefill exceeds this
  options.pressure.window = 4;
  options.pressure.relief_method = "FLAT";
  ServeSession session(serve_planner, options);
  const ServeResult result = session.Run(trace);

  EXPECT_EQ(result.metrics.pressure_switch_tick, 1);
  EXPECT_EQ(result.metrics.steps, 5);

  // Both decode steps (context 64 -> bucket 64) ran under the relief plan.
  const std::uint64_t flat =
      planner.Simulate(serve_planner.DecodePlanAs("FLAT", 64), Hw()).cycles;
  const RequestMetrics& a = result.requests[0];
  const RequestMetrics& b = result.requests[1];
  EXPECT_EQ(a.finish_cycles - a.first_token_cycles, flat);
  EXPECT_EQ(b.finish_cycles - b.first_token_cycles, flat);
  EXPECT_EQ(serve_planner.DecodePlanAs("FLAT", 64).method, "FLAT");

  // Without pressure the same trace decodes under the configured method and
  // never records a switch.
  ServeSessionOptions plain_options;
  plain_options.max_batch = 1;
  ServeSession plain(serve_planner, plain_options);
  const ServeResult baseline = plain.Run(trace);
  EXPECT_EQ(baseline.metrics.pressure_switch_tick, -1);
  const std::uint64_t mas =
      planner.Simulate(serve_planner.DecodePlan(64), Hw()).cycles;
  EXPECT_EQ(baseline.requests[0].finish_cycles - baseline.requests[0].first_token_cycles,
            mas);
}

// Coalescing arithmetic: two requests decoding in the same round share ONE
// N=2 simulation; the round clock advances by that single sim and both
// members stamp from its completion.
TEST(AdaptiveSession, CoalescedDecodeArithmetic) {
  RequestTrace trace;
  trace.requests = {
      {0, 0, 64, 2, 1},
      {1, 0, 64, 2, 1},
  };
  Planner planner;
  ServePlanner serve_planner(planner, Hw(), Geometry(), FastOptions());
  ServeSessionOptions options;
  options.max_batch = 2;
  options.coalesce_decode = true;
  ServeSession session(serve_planner, options);
  const ServeResult result = session.Run(trace);

  auto cycles = [&](const TuningPlan& plan) { return planner.Simulate(plan, Hw()).cycles; };
  const std::uint64_t pa = cycles(serve_planner.PrefillPlan(64));
  // Round 1: both at context 64 -> one q=2 sim at bucket 64. Round 2: both
  // at context 65 -> one q=2 sim at bucket 128.
  const std::uint64_t d1 = cycles(serve_planner.DecodePlan(64, 2));
  const std::uint64_t d2 = cycles(serve_planner.DecodePlan(65, 2));

  const ServeMetrics& m = result.metrics;
  EXPECT_EQ(m.prefill_sims, 2);
  EXPECT_EQ(m.decode_sims, 2);            // two rounds, one coalesced sim each
  EXPECT_EQ(m.coalesced_decode_sims, 2);
  EXPECT_EQ(m.makespan_cycles, 2 * pa + d1 + d2);
  // Both members finish when their shared sim completes.
  EXPECT_EQ(result.requests[0].finish_cycles, 2 * pa + d1 + d2);
  EXPECT_EQ(result.requests[1].finish_cycles, 2 * pa + d1 + d2);

  // Uncoalesced reference: four decode sims, none coalesced.
  ServeSessionOptions plain_options;
  plain_options.max_batch = 2;
  ServeSession plain(serve_planner, plain_options);
  const ServeResult reference = plain.Run(trace);
  EXPECT_EQ(reference.metrics.decode_sims, 4);
  EXPECT_EQ(reference.metrics.coalesced_decode_sims, 0);
}

// coalesce_decode with at most one decode member per round must be a
// byte-level no-op (the flag only merges CONCURRENT decode steps).
TEST(AdaptiveSession, CoalescingIsIdentityWithoutConcurrency) {
  RequestTrace trace;
  trace.requests = {{0, 0, 100, 3, 1}, {1, 50, 80, 2, 1}};
  Planner planner;
  ServePlanner serve_planner(planner, Hw(), Geometry(), FastOptions());

  ServeSessionOptions options;
  options.max_batch = 1;  // rounds never hold two decode members
  ServeSession plain(serve_planner, options);
  const std::string baseline = ResultJson(plain.Run(trace));

  options.coalesce_decode = true;
  ServeSession coalescing(serve_planner, options);
  EXPECT_EQ(ResultJson(coalescing.Run(trace)), baseline);
}

TEST(AdaptiveSession, ResultIsIndependentOfJobs) {
  SyntheticTraceSpec spec;
  spec.requests = 8;
  spec.seed = 0xAD4;
  spec.prompt_min = 32;
  spec.prompt_max = 200;
  spec.decode_min = 2;
  spec.decode_max = 10;
  const RequestTrace trace = GenerateTrace(spec);

  std::string baseline;
  for (const int jobs : {1, 2, 8}) {
    Planner planner;
    ServePlanner serve_planner(planner, Hw(), Geometry(), FastOptions());
    ServeSessionOptions options;
    options.max_batch = 4;
    options.jobs = jobs;
    options.coalesce_decode = true;
    options.pressure.enabled = true;
    options.pressure.ttft_target_cycles = 100.0;  // fires almost immediately
    options.pressure.window = 2;
    ServeSession session(serve_planner, options);
    const ServeResult result = session.Run(trace);
    EXPECT_GE(result.metrics.pressure_switch_tick, 0) << "policy must fire in this setup";
    EXPECT_GT(result.metrics.coalesced_decode_sims, 0);
    const std::string json = ResultJson(result);
    if (baseline.empty()) {
      baseline = json;
    } else {
      EXPECT_EQ(json, baseline) << "jobs=" << jobs;
    }
  }
}

// --------------------------------------------------- prefill-only TPOT edge

TEST(ServeMetricsEdge, PrefillOnlyTraceHasConsistentZeroTpot) {
  RequestTrace trace;
  trace.requests = {{0, 0, 64, 0, 1}, {1, 0, 100, 0, 1}, {2, 1, 32, 0, 1}};
  Planner planner;
  ServePlanner serve_planner(planner, Hw(), Geometry(), FastOptions());
  ServeSession session(serve_planner, ServeSessionOptions{});
  const ServeResult result = session.Run(trace);

  const ServeMetrics& m = result.metrics;
  EXPECT_EQ(m.requests, 3);
  EXPECT_EQ(m.decode_requests, 0);
  EXPECT_EQ(m.decode_sims, 0);
  // Every TPOT statistic is exactly 0.0 — mean, max, and all percentiles
  // agree instead of mixing 0 means with garbage percentiles.
  EXPECT_EQ(m.mean_tpot_cycles, 0.0);
  EXPECT_EQ(m.max_tpot_cycles, 0.0);
  EXPECT_EQ(m.p50_tpot_cycles, 0.0);
  EXPECT_EQ(m.p95_tpot_cycles, 0.0);
  EXPECT_EQ(m.p99_tpot_cycles, 0.0);
  // Per-request TPOT of a decode_len == 0 request is 0, not a 0/0 NaN.
  for (const RequestMetrics& r : result.requests) {
    EXPECT_EQ(r.TpotCycles(), 0.0) << r.id;
    EXPECT_EQ(r.first_token_cycles, r.finish_cycles) << r.id;
  }
  // TTFT percentiles still populate from the three real samples.
  EXPECT_GT(m.p50_ttft_cycles, 0.0);
  EXPECT_GE(m.p99_ttft_cycles, m.p50_ttft_cycles);
  EXPECT_DOUBLE_EQ(m.max_ttft_cycles,
                   NearestRankPercentile({static_cast<double>(result.requests[0].TtftCycles()),
                                          static_cast<double>(result.requests[1].TtftCycles()),
                                          static_cast<double>(result.requests[2].TtftCycles())},
                                         100.0));
}

// ------------------------------------------------------------- load sweeps

TEST(LoadSweep, GeometricRatesLadder) {
  const std::vector<double> rates = GeometricRates(32.0, 2.0, 4);
  ASSERT_EQ(rates.size(), 4u);
  EXPECT_DOUBLE_EQ(rates[0], 32.0);
  EXPECT_DOUBLE_EQ(rates[3], 256.0);
  EXPECT_THROW(GeometricRates(0.0, 2.0, 3), Error);
  EXPECT_THROW(GeometricRates(32.0, 1.0, 3), Error);  // does not advance
  EXPECT_THROW(GeometricRates(32.0, 2.0, 0), Error);
}

TEST(LoadSweep, RunsDeterministicallyAcrossTheLadder) {
  Planner planner;
  ServePlanner serve_planner(planner, Hw(), Geometry(), FastOptions());

  LoadSweepOptions sweep;
  sweep.arrival = ArrivalSpec::Parse("poisson");
  sweep.shape.name = "sweep_test";
  sweep.shape.requests = 6;
  sweep.shape.seed = 21;
  sweep.shape.prompt_min = 32;
  sweep.shape.prompt_max = 100;
  sweep.shape.decode_min = 1;
  sweep.shape.decode_max = 4;
  sweep.rates_per_s = GeometricRates(64.0, 4.0, 3);
  sweep.slo.ttft_us = 2000.0;
  sweep.session.max_batch = 2;

  const std::vector<LoadSweepPoint> points = RunLoadSweep(serve_planner, sweep);
  ASSERT_EQ(points.size(), 3u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_DOUBLE_EQ(points[i].rate_per_s, sweep.rates_per_s[i]);
    EXPECT_EQ(points[i].result.metrics.requests, 6);
    EXPECT_EQ(points[i].slo.requests, 6);
    // Same length shape at every point: the load knob moves only arrivals.
    EXPECT_EQ(points[i].result.metrics.prompt_tokens,
              points[0].result.metrics.prompt_tokens);
  }

  // Replaying the sweep is byte-deterministic point for point, and the
  // second pass resolves every plan from the warm memo.
  const std::int64_t tuned = planner.plans_tuned();
  const std::vector<LoadSweepPoint> replay = RunLoadSweep(serve_planner, sweep);
  EXPECT_EQ(planner.plans_tuned(), tuned);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(ResultJson(replay[i].result), ResultJson(points[i].result)) << i;
  }

  LoadSweepOptions empty = sweep;
  empty.rates_per_s.clear();
  EXPECT_THROW(RunLoadSweep(serve_planner, empty), Error);
}

}  // namespace
}  // namespace mas::serve
