#include "sim/engine.h"

#include <gtest/gtest.h>

#include "common/status.h"
#include "sim/hardware_config.h"

namespace mas::sim {
namespace {

HardwareConfig TwoCoreHw() { return EdgeSimConfig(); }

TaskSpec Task(ResourceKind kind, int core, std::uint64_t duration,
              std::vector<TaskId> deps = {}) {
  TaskSpec spec;
  spec.resource = kind;
  spec.core = core;
  spec.duration = duration;
  spec.deps = std::move(deps);
  return spec;
}

TEST(Engine, EmptyRunIsZeroCycles) {
  Engine engine(TwoCoreHw());
  const SimResult r = engine.Run();
  EXPECT_EQ(r.cycles, 0u);
  EXPECT_EQ(r.dram_read_bytes, 0);
}

TEST(Engine, SerializesTasksOnOneResource) {
  Engine engine(TwoCoreHw());
  engine.AddTask(Task(ResourceKind::kMac, 0, 10));
  engine.AddTask(Task(ResourceKind::kMac, 0, 5));
  const SimResult r = engine.Run();
  EXPECT_EQ(r.cycles, 15u);
}

TEST(Engine, ParallelResourcesOverlap) {
  Engine engine(TwoCoreHw());
  engine.AddTask(Task(ResourceKind::kMac, 0, 10));
  engine.AddTask(Task(ResourceKind::kVec, 0, 7));
  engine.AddTask(Task(ResourceKind::kMac, 1, 9));
  const SimResult r = engine.Run();
  EXPECT_EQ(r.cycles, 10u);  // all three run concurrently
}

TEST(Engine, DependencyDelaysStart) {
  Engine engine(TwoCoreHw());
  const TaskId a = engine.AddTask(Task(ResourceKind::kDma, 0, 10));
  engine.AddTask(Task(ResourceKind::kMac, 0, 5, {a}));
  const SimResult r = engine.Run();
  EXPECT_EQ(r.cycles, 15u);  // MAC waits for DMA
}

TEST(Engine, DiamondDependency) {
  Engine engine(TwoCoreHw());
  const TaskId load = engine.AddTask(Task(ResourceKind::kDma, 0, 4));
  const TaskId m = engine.AddTask(Task(ResourceKind::kMac, 0, 6, {load}));
  const TaskId v = engine.AddTask(Task(ResourceKind::kVec, 0, 3, {load}));
  engine.AddTask(Task(ResourceKind::kDma, 0, 2, {m, v}));
  const SimResult r = engine.Run();
  // load [0,4), mac [4,10), vec [4,7), store [10,12).
  EXPECT_EQ(r.cycles, 12u);
}

TEST(Engine, InOrderQueueBlocksHead) {
  // Second MAC task is independent but queued behind the first, which waits
  // on a long DMA: in-order issue means it cannot jump the queue.
  Engine engine(TwoCoreHw());
  const TaskId slow_load = engine.AddTask(Task(ResourceKind::kDma, 0, 100));
  engine.AddTask(Task(ResourceKind::kMac, 0, 1, {slow_load}));
  engine.AddTask(Task(ResourceKind::kMac, 0, 1));  // independent, still waits
  const SimResult r = engine.Run();
  EXPECT_EQ(r.cycles, 102u);
}

TEST(Engine, FlatVsMasIssueOrderDemonstration) {
  // The paper's core mechanism in miniature. MAC work: two C tiles and two
  // PV tiles of 10 cycles; VEC softmax of 10 cycles per iteration.
  // FLAT order (C1, PV1, C2, PV2 with PV_i waiting on S_i) serializes;
  // MAS order (C1, C2, PV1, PV2) overlaps softmax with the next C tile.
  auto run = [](bool mas_order) {
    Engine engine(EdgeSimConfig());
    const TaskId c1 = engine.AddTask(Task(ResourceKind::kMac, 0, 10));
    if (mas_order) {
      const TaskId c2 = engine.AddTask(Task(ResourceKind::kMac, 0, 10));
      const TaskId s1 = engine.AddTask(Task(ResourceKind::kVec, 0, 10, {c1}));
      const TaskId s2 = engine.AddTask(Task(ResourceKind::kVec, 0, 10, {c2}));
      engine.AddTask(Task(ResourceKind::kMac, 0, 10, {s1}));
      engine.AddTask(Task(ResourceKind::kMac, 0, 10, {s2}));
    } else {
      const TaskId s1 = engine.AddTask(Task(ResourceKind::kVec, 0, 10, {c1}));
      engine.AddTask(Task(ResourceKind::kMac, 0, 10, {s1}));
      const TaskId c2 = engine.AddTask(Task(ResourceKind::kMac, 0, 10));
      const TaskId s2 = engine.AddTask(Task(ResourceKind::kVec, 0, 10, {c2}));
      engine.AddTask(Task(ResourceKind::kMac, 0, 10, {s2}));
    }
    return engine.Run().cycles;
  };
  const std::uint64_t flat = run(false);
  const std::uint64_t mas = run(true);
  // FLAT fully serializes: PV1 is queued ahead of C2 on the in-order MAC
  // queue and waits for S1, so every stage is a chain -> 6 tasks x 10.
  EXPECT_EQ(flat, 60u);
  EXPECT_EQ(mas, 40u);  // C1 C2 | S1 overlaps C2 | PV1 PV2, S2 overlaps PV1
  EXPECT_LT(mas, flat);
}

TEST(Engine, AccumulatesEnergyAndTraffic) {
  Engine engine(TwoCoreHw());
  TaskSpec t1 = Task(ResourceKind::kDma, 0, 5);
  t1.energy.dram_pj = 100.0;
  t1.dram_read_bytes = 64;
  TaskSpec t2 = Task(ResourceKind::kMac, 0, 5);
  t2.energy.mac_pe_pj = 50.0;
  t2.dram_write_bytes = 32;
  engine.AddTask(std::move(t1));
  engine.AddTask(std::move(t2));
  const SimResult r = engine.Run();
  EXPECT_DOUBLE_EQ(r.energy.dram_pj, 100.0);
  EXPECT_DOUBLE_EQ(r.energy.mac_pe_pj, 50.0);
  EXPECT_DOUBLE_EQ(r.energy.total_pj(), 150.0);
  EXPECT_EQ(r.dram_read_bytes, 64);
  EXPECT_EQ(r.dram_write_bytes, 32);
}

TEST(Engine, ResourceStatsTrackBusyCycles) {
  Engine engine(TwoCoreHw());
  engine.AddTask(Task(ResourceKind::kMac, 0, 10));
  engine.AddTask(Task(ResourceKind::kMac, 0, 20));
  engine.AddTask(Task(ResourceKind::kVec, 1, 5));
  const SimResult r = engine.Run();
  EXPECT_EQ(r.BusyCycles(ResourceKind::kMac), 30u);
  EXPECT_EQ(r.BusyCycles(ResourceKind::kVec), 5u);
  EXPECT_DOUBLE_EQ(r.MacUtilization(), 1.0);  // busiest MAC active the whole run
}

TEST(Engine, TimelineRecordedWhenRequested) {
  Engine engine(TwoCoreHw(), /*record_timeline=*/true);
  TaskSpec t = Task(ResourceKind::kMac, 0, 7);
  t.name = "C_1";
  engine.AddTask(std::move(t));
  const SimResult r = engine.Run();
  ASSERT_EQ(r.timeline.size(), 1u);
  EXPECT_EQ(r.timeline[0].name, "C_1");
  EXPECT_EQ(r.timeline[0].start, 0u);
  EXPECT_EQ(r.timeline[0].end, 7u);
}

TEST(Engine, TimelineEmptyByDefault) {
  Engine engine(TwoCoreHw());
  engine.AddTask(Task(ResourceKind::kMac, 0, 7));
  EXPECT_TRUE(engine.Run().timeline.empty());
}

TEST(Engine, RejectsUnknownDependency) {
  Engine engine(TwoCoreHw());
  EXPECT_THROW(engine.AddTask(Task(ResourceKind::kMac, 0, 1, {5})), Error);
}

TEST(Engine, RejectsBadCore) {
  Engine engine(TwoCoreHw());
  EXPECT_THROW(engine.AddTask(Task(ResourceKind::kMac, 7, 1)), Error);
}

TEST(Engine, ForwardDependenciesRejected) {
  // Every waits-for edge (dependency or in-order queue predecessor) points
  // from a higher task id to a lower one, so cycles — and therefore
  // deadlocks — are impossible by construction. The API enforces this by
  // rejecting dependencies on not-yet-added tasks.
  Engine engine(TwoCoreHw());
  EXPECT_THROW(engine.AddTask(Task(ResourceKind::kVec, 0, 1, {2})), Error);
  const TaskId t0 = engine.AddTask(Task(ResourceKind::kVec, 0, 1));
  EXPECT_THROW(engine.AddTask(Task(ResourceKind::kMac, 0, 1, {t0, t0 + 1})), Error);
}

TEST(Engine, RunTwiceRejected) {
  Engine engine(TwoCoreHw());
  engine.AddTask(Task(ResourceKind::kMac, 0, 1));
  engine.Run();
  EXPECT_THROW(engine.Run(), Error);
  EXPECT_THROW(engine.AddTask(Task(ResourceKind::kMac, 0, 1)), Error);
}

TEST(Engine, ResetAllowsRebuildAndRun) {
  Engine engine(TwoCoreHw());
  engine.AddTask(Task(ResourceKind::kMac, 0, 10));
  engine.AddTask(Task(ResourceKind::kMac, 0, 5));
  EXPECT_EQ(engine.Run().cycles, 15u);
  engine.Reset();
  EXPECT_EQ(engine.task_count(), 0);
  // A different schedule on the same (reused) engine: no state may leak.
  const TaskId a = engine.AddTask(Task(ResourceKind::kDma, 0, 10));
  engine.AddTask(Task(ResourceKind::kMac, 1, 5, {a}));
  EXPECT_EQ(engine.Run().cycles, 15u);
  EXPECT_THROW(engine.Run(), Error);  // still one Run() per build
}

TEST(Engine, ResetSwitchesTimelineRecording) {
  Engine engine(TwoCoreHw(), /*record_timeline=*/false);
  TaskSpec t = Task(ResourceKind::kVec, 0, 3);
  t.name = "S_1";
  engine.AddTask(t);
  EXPECT_TRUE(engine.Run().timeline.empty());
  engine.Reset(/*record_timeline=*/true);
  engine.AddTask(t);
  const SimResult r = engine.Run();
  ASSERT_EQ(r.timeline.size(), 1u);
  EXPECT_EQ(r.timeline[0].name, "S_1");
}

TEST(Engine, DepListOverflowRejected) {
  DepList deps;
  for (std::size_t i = 0; i < DepList::kCapacity; ++i) deps.push_back(0);
  EXPECT_THROW(deps.push_back(0), Error);
}

TEST(Engine, CrossCoreDependencySynchronizes) {
  Engine engine(TwoCoreHw());
  const TaskId m0 = engine.AddTask(Task(ResourceKind::kMac, 0, 10));
  engine.AddTask(Task(ResourceKind::kMac, 1, 5, {m0}));
  const SimResult r = engine.Run();
  EXPECT_EQ(r.cycles, 15u);
}

}  // namespace
}  // namespace mas::sim
