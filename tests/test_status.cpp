#include "common/status.h"

#include <gtest/gtest.h>

namespace mas {
namespace {

TEST(Status, CheckPassesOnTrue) {
  EXPECT_NO_THROW(MAS_CHECK(1 + 1 == 2));
}

TEST(Status, CheckThrowsOnFalse) {
  EXPECT_THROW(MAS_CHECK(false), Error);
}

TEST(Status, MessageCarriesConditionAndContext) {
  try {
    const int x = 3;
    MAS_CHECK(x == 4) << "x was " << x;
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("x == 4"), std::string::npos);
    EXPECT_NE(msg.find("x was 3"), std::string::npos);
    EXPECT_NE(msg.find("test_status.cpp"), std::string::npos);
    EXPECT_NE(e.raw_message().find("x was 3"), std::string::npos);
  }
}

TEST(Status, FailAlwaysThrows) {
  try {
    MAS_FAIL() << "unreachable branch " << 7;
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("unreachable branch 7"), std::string::npos);
  }
}

TEST(Status, ErrorIsRuntimeError) {
  // Callers may catch std::runtime_error generically.
  EXPECT_THROW(MAS_CHECK(false), std::runtime_error);
}

}  // namespace
}  // namespace mas
