#include "common/table.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/status.h"

namespace mas {
namespace {

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), Error);
}

TEST(TextTable, RejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only one"}), Error);
  EXPECT_THROW(t.AddRow({"1", "2", "3"}), Error);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "v"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  const std::string s = t.ToString();
  std::istringstream is(s);
  std::string line;
  std::getline(is, line);
  const std::size_t width = line.size();
  while (std::getline(is, line)) {
    EXPECT_EQ(line.size(), width) << "misaligned line: '" << line << "'";
  }
}

TEST(TextTable, RuleRendersDashes) {
  TextTable t({"a"});
  t.AddRow({"1"});
  t.AddRule();
  t.AddRow({"2"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("-"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 3u);  // rule counts as a row slot
}

TEST(TextTable, CsvEscapesSpecials) {
  TextTable t({"a", "b"});
  t.AddRow({"plain", "has,comma"});
  t.AddRow({"has\"quote", "multi\nline"});
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
  EXPECT_NE(csv.find("\"multi\nline\""), std::string::npos);
}

TEST(TextTable, CsvSkipsRules) {
  TextTable t({"a"});
  t.AddRow({"1"});
  t.AddRule();
  t.AddRow({"2"});
  const std::string csv = t.ToCsv();
  EXPECT_EQ(csv, "a\n1\n2\n");
}

TEST(Format, Fixed) {
  EXPECT_EQ(FormatFixed(1.23456, 2), "1.23");
  EXPECT_EQ(FormatFixed(1.0, 3), "1.000");
  EXPECT_EQ(FormatFixed(-0.5, 1), "-0.5");
}

TEST(Format, Speedup) { EXPECT_EQ(FormatSpeedup(2.749), "2.75x"); }

TEST(Format, Percent) {
  EXPECT_EQ(FormatPercent(0.5403), "54.03%");
  EXPECT_EQ(FormatPercent(-0.2142), "-21.42%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
}

TEST(WriteFile, RoundTrips) {
  const std::string path = testing::TempDir() + "/mas_table_test.txt";
  WriteFile(path, "hello\nworld\n");
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "hello\nworld\n");
  std::remove(path.c_str());
}

TEST(WriteFile, FailsOnBadPath) {
  EXPECT_THROW(WriteFile("/nonexistent_dir_zzz/file.txt", "x"), Error);
}

}  // namespace
}  // namespace mas
