#include "sim/l1_tracker.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace mas::sim {
namespace {

TEST(L1Tracker, AllocFreeAccounting) {
  L1Tracker t(1000);
  EXPECT_EQ(t.capacity(), 1000);
  EXPECT_EQ(t.used(), 0);
  t.Alloc("a", 400);
  EXPECT_EQ(t.used(), 400);
  EXPECT_EQ(t.free_bytes(), 600);
  t.Alloc("b", 600);
  EXPECT_EQ(t.used(), 1000);
  t.Free("a");
  EXPECT_EQ(t.used(), 600);
  t.Free("b");
  EXPECT_EQ(t.used(), 0);
}

TEST(L1Tracker, PeakIsHighWaterMark) {
  L1Tracker t(1000);
  t.Alloc("a", 300);
  t.Alloc("b", 500);
  t.Free("a");
  t.Alloc("c", 100);
  EXPECT_EQ(t.peak(), 800);
}

TEST(L1Tracker, OverflowThrows) {
  L1Tracker t(100);
  t.Alloc("a", 60);
  EXPECT_THROW(t.Alloc("b", 50), Error);
  EXPECT_EQ(t.used(), 60);  // failed alloc leaves state unchanged
}

TEST(L1Tracker, CanFitPredictsAlloc) {
  L1Tracker t(100);
  t.Alloc("a", 60);
  EXPECT_TRUE(t.CanFit(40));
  EXPECT_FALSE(t.CanFit(41));
}

TEST(L1Tracker, DuplicateNameRejected) {
  L1Tracker t(100);
  t.Alloc("a", 10);
  EXPECT_THROW(t.Alloc("a", 10), Error);
}

TEST(L1Tracker, FreeUnknownRejected) {
  L1Tracker t(100);
  EXPECT_THROW(t.Free("ghost"), Error);
}

TEST(L1Tracker, FreeIfLive) {
  L1Tracker t(100);
  t.Alloc("a", 10);
  EXPECT_TRUE(t.FreeIfLive("a"));
  EXPECT_FALSE(t.FreeIfLive("a"));
  EXPECT_EQ(t.used(), 0);
}

TEST(L1Tracker, SizeOfAndLiveness) {
  L1Tracker t(100);
  t.Alloc("a", 42);
  EXPECT_TRUE(t.IsLive("a"));
  EXPECT_EQ(t.SizeOf("a"), 42);
  EXPECT_FALSE(t.IsLive("b"));
  EXPECT_EQ(t.SizeOf("b"), 0);
}

TEST(L1Tracker, ZeroByteAllocationLegal) {
  L1Tracker t(10);
  t.Alloc("empty", 0);
  EXPECT_TRUE(t.IsLive("empty"));
  EXPECT_EQ(t.used(), 0);
}

TEST(L1Tracker, LiveBuffersLists) {
  L1Tracker t(100);
  t.Alloc("a", 1);
  t.Alloc("b", 2);
  auto live = t.LiveBuffers();
  EXPECT_EQ(live.size(), 2u);
}

TEST(L1Tracker, RejectsNonPositiveCapacity) {
  EXPECT_THROW(L1Tracker(0), Error);
  EXPECT_THROW(L1Tracker(-5), Error);
}

TEST(L1Tracker, RejectsNegativeAllocation) {
  L1Tracker t(100);
  EXPECT_THROW(t.Alloc("a", -1), Error);
}

// Eviction pattern used by the proactive overwrite: freeing a victim makes
// room for the protected buffer.
TEST(L1Tracker, OverwritePattern) {
  L1Tracker t(100);
  t.Alloc("K", 30);
  t.Alloc("V", 30);
  t.Alloc("C1", 35);
  EXPECT_FALSE(t.CanFit(35));  // C2 does not fit
  t.Free("V");                 // proactive overwrite of V
  EXPECT_TRUE(t.CanFit(35));
  t.Alloc("C2", 35);
  EXPECT_EQ(t.used(), 100);
  EXPECT_EQ(t.peak(), 100);
}

}  // namespace
}  // namespace mas::sim
