// BackendRegistry tests: catalog contents and error style, the
// EdgeSimConfig()/DavinciNpuConfig() thin-wrapper identity, the CacheKey
// anti-aliasing property (every backend pair and every tunable override
// yields a distinct plan-store key), GPU workgroup-residency cost
// arithmetic, and heterogeneous phase placement through ServePlanner.
#include "sim/backend.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/serve_planner.h"
#include "sim/cost_model.h"

namespace mas::sim {
namespace {

BackendSpec Spec(const std::string& text) { return BackendSpec::Parse(text); }

// ---------------------------------------------------------------- registry

TEST(BackendRegistry, CatalogListsBuiltinsInRegistrationOrder) {
  const std::vector<BackendInfo> all = BackendRegistry::Instance().List();
  ASSERT_GE(all.size(), 3u);
  EXPECT_EQ(all[0].name, "edge");
  EXPECT_EQ(all[1].name, "npu");
  EXPECT_EQ(all[2].name, "gpu");
  for (const BackendInfo& info : all) {
    EXPECT_FALSE(info.summary.empty()) << info.name;
    EXPECT_FALSE(info.tunables.empty()) << info.name;
    EXPECT_NE(BackendRegistry::Instance().Find(info.name), nullptr);
  }
  EXPECT_EQ(BackendRegistry::Instance().Find("tpu"), nullptr);
}

TEST(BackendRegistry, UnknownBackendErrorListsTheAvailableSet) {
  try {
    ResolveBackend("quantum");
    FAIL() << "expected an Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown backend 'quantum'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'edge'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'npu'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'gpu'"), std::string::npos) << msg;
  }
}

TEST(BackendRegistry, DuplicateRegistrationThrows) {
  EXPECT_THROW(BackendRegistry::Instance().Register(
                   BackendInfo{"edge", "edge", "imposter", {}},
                   [](const BackendSpec&) { return EdgeSimConfig(); }),
               Error);
}

TEST(BackendRegistry, FactoriesRejectBadParams) {
  EXPECT_THROW(ResolveBackend("edge:warp=32"), Error);      // unknown key
  EXPECT_THROW(ResolveBackend("edge:cores=2.5"), Error);    // fractional count
  EXPECT_THROW(ResolveBackend("edge:cores=0"), Error);      // empty machine
  EXPECT_THROW(ResolveBackend("gpu:occupancy=0"), Error);   // no resident work
  EXPECT_THROW(ResolveBackend("npu:lite_cores=0,tiny_cores=0"), Error);
  EXPECT_THROW(ResolveBackend("edge:freq_ghz=-1"), Error);  // non-positive clock
}

// ------------------------------------------------------------- thin wrappers

TEST(BackendRegistry, LegacyConstructorsAreThinRegistryWrappers) {
  EXPECT_EQ(EdgeSimConfig().CacheKey(),
            BackendRegistry::Instance().Create(Spec("edge")).CacheKey());
  EXPECT_EQ(DavinciNpuConfig().CacheKey(),
            BackendRegistry::Instance().Create(Spec("npu")).CacheKey());
  EXPECT_EQ(EdgeSimConfig().Describe(), ResolveBackend("edge").Describe());
  EXPECT_EQ(DavinciNpuConfig().Describe(), ResolveBackend("npu").Describe());
}

TEST(BackendSpec, ParseAndRoundTrip) {
  const BackendSpec spec = Spec("gpu:sms=4,shmem_kb=48");
  EXPECT_EQ(spec.backend, "gpu");
  EXPECT_TRUE(spec.Has("sms"));
  EXPECT_DOUBLE_EQ(spec.Param("sms", 0.0), 4.0);
  EXPECT_DOUBLE_EQ(spec.Param("occupancy", 7.0), 7.0);
  EXPECT_EQ(spec.ToString(), "gpu:sms=4,shmem_kb=48");
  EXPECT_EQ(Spec("edge").ToString(), "edge");
  EXPECT_THROW(BackendSpec::Parse("edge:cores=2,cores=3"), Error);  // repeated key
  EXPECT_THROW(BackendSpec::Parse(""), Error);
}

// ------------------------------------------------------- CacheKey aliasing

// Plan stores and the sweep cache key on HardwareConfig::CacheKey(): any two
// configs a user can name via the spec grammar must never collide. Property:
// all registered defaults are pairwise distinct, and for EVERY backend,
// overriding EVERY advertised tunable (default + 1 — the smallest
// representable nudge for counts) changes the key.
TEST(BackendRegistry, CacheKeyNeverAliasesAcrossBackendsOrTunables) {
  BackendRegistry& registry = BackendRegistry::Instance();
  std::set<std::string> keys;
  for (const BackendInfo& info : registry.List()) {
    BackendSpec spec;
    spec.backend = info.name;
    const std::string base_key = registry.Create(spec).CacheKey();
    EXPECT_TRUE(keys.insert(base_key).second)
        << "backend '" << info.name << "' aliases another backend's default CacheKey";

    for (const auto& [key, default_value] : info.tunables) {
      BackendSpec tweaked = spec;
      tweaked.params.emplace_back(key, default_value + 1.0);
      const std::string tweaked_key = registry.Create(tweaked).CacheKey();
      EXPECT_NE(tweaked_key, base_key)
          << "override " << info.name << ":" << key << "=" << default_value + 1.0
          << " does not reach CacheKey() — plan-store aliasing";
    }
  }
}

// --------------------------------------------------------- GPU cost model

TEST(ResidentWorkgroupsTest, OccupancyCapAndShmemGate) {
  CoreConfig cc;
  // Edge/NPU defaults: identity.
  EXPECT_EQ(ResidentWorkgroups(cc, 1 << 20), 1);

  cc.concurrent_workgroups = 4;
  cc.shmem_bytes = 96 * 1024;
  EXPECT_EQ(ResidentWorkgroups(cc, 8 * 1024), 4);    // occupancy-capped
  EXPECT_EQ(ResidentWorkgroups(cc, 48 * 1024), 2);   // shmem-gated
  EXPECT_EQ(ResidentWorkgroups(cc, 200 * 1024), 1);  // never below one
  EXPECT_EQ(ResidentWorkgroups(cc, 0), 4);           // no working set: cap only

  cc.shmem_bytes = 0;  // no shared-memory gate configured
  EXPECT_EQ(ResidentWorkgroups(cc, 200 * 1024), 4);
}

TEST(GpuCostModel, ResidencyDividesCyclesButNotEnergy) {
  const HardwareConfig gpu = ResolveBackend("gpu:sms=1,occupancy=4");
  const HardwareConfig serial = ResolveBackend("gpu:sms=1,occupancy=1");
  const EnergyModel em;
  const CostModel cm_gpu(gpu, em);
  const CostModel cm_serial(serial, em);

  // 8 groups of 16x32x16: one output tile each, pass working set
  // (16*32 + 32*16 + 16*16) * 2 B = 2.5 KB, so all 4 workgroups fit in
  // 96 KB shmem and the accumulate time divides by 4.
  const TaskCost four = cm_gpu.MacTile(8, 16, 32, 16, 0);
  const TaskCost one = cm_serial.MacTile(8, 16, 32, 16, 0);
  const std::uint64_t setup =
      static_cast<std::uint64_t>(gpu.cores[0].mac_setup_cycles);
  EXPECT_EQ(one.cycles - setup, 8u * 32u);
  EXPECT_EQ(four.cycles - setup, 2u * 32u);
  // Energy counts real work, which residency does not change.
  EXPECT_DOUBLE_EQ(four.energy.total_pj(), one.energy.total_pj());

  // A pass too fat for shmem serializes even at occupancy=4: working set
  // (256*256*3) * 2 B = 384 KB > 96 KB.
  const TaskCost fat = cm_gpu.MacTile(1, 256, 256, 256, 0);
  const TaskCost fat_serial = cm_serial.MacTile(1, 256, 256, 256, 0);
  EXPECT_EQ(fat.cycles, fat_serial.cycles);
}

TEST(GpuCostModel, DescribeAdvertisesResidencyAndDmaFields) {
  const HardwareConfig gpu = ResolveBackend("gpu");
  const std::string desc = gpu.Describe();
  EXPECT_NE(desc.find("DMA setup 512 cycles"), std::string::npos) << desc;
  EXPECT_NE(desc.find("2 B elements"), std::string::npos) << desc;
  EXPECT_NE(desc.find("4 resident workgroups"), std::string::npos) << desc;
  EXPECT_NE(desc.find("96 KB shmem"), std::string::npos) << desc;
  // Edge stays residency-silent: its cores have no workgroup story.
  EXPECT_EQ(EdgeSimConfig().Describe().find("workgroups"), std::string::npos);
}

// ------------------------------------------------------------ device lists

TEST(ResolveBackendListTest, CyclesEntriesAcrossDevices) {
  const std::vector<HardwareConfig> fleet = ResolveBackendList("edge;npu", 4);
  ASSERT_EQ(fleet.size(), 4u);
  EXPECT_EQ(fleet[0].name, "edge_sim");
  EXPECT_EQ(fleet[1].name, "davinci_npu");
  EXPECT_EQ(fleet[2].name, "edge_sim");
  EXPECT_EQ(fleet[3].name, "davinci_npu");

  const std::vector<HardwareConfig> tuned = ResolveBackendList("gpu:sms=2", 2);
  ASSERT_EQ(tuned.size(), 2u);
  EXPECT_EQ(tuned[0].CacheKey(), tuned[1].CacheKey());

  EXPECT_THROW(ResolveBackendList("", 2), Error);
  EXPECT_THROW(ResolveBackendList("edge;;npu", 3), Error);
  EXPECT_THROW(ResolveBackendList("edge", 0), Error);
}

// --------------------------------------------------- heterogeneous serving

TEST(HeteroPlacement, ServePlannerResolvesPhaseBackends) {
  Planner planner;
  serve::ServePlannerOptions options;
  options.min_context_bucket = 64;
  options.prefill_backend = "npu";
  serve::ServePlanner sp(planner, EdgeSimConfig(), BertBaseGeometry(), options);

  EXPECT_TRUE(sp.split_placement());
  EXPECT_EQ(sp.prefill_hw().name, "davinci_npu");
  EXPECT_EQ(sp.decode_hw().name, "edge_sim");
  // NPU runs at 1 GHz vs the 3.75 GHz base clock: prefill cycles inflate by
  // the ratio when reported on the base clock; decode stays exactly 1.0.
  EXPECT_DOUBLE_EQ(sp.prefill_clock_scale(), 3.75);
  EXPECT_DOUBLE_EQ(sp.decode_clock_scale(), 1.0);
}

TEST(HeteroPlacement, EmptyBackendsKeepTheLegacyHomogeneousPath) {
  Planner planner;
  serve::ServePlannerOptions options;
  options.min_context_bucket = 64;
  serve::ServePlanner sp(planner, EdgeSimConfig(), BertBaseGeometry(), options);
  EXPECT_FALSE(sp.split_placement());
  EXPECT_EQ(sp.prefill_hw().CacheKey(), EdgeSimConfig().CacheKey());
  EXPECT_DOUBLE_EQ(sp.prefill_clock_scale(), 1.0);
  EXPECT_DOUBLE_EQ(sp.decode_clock_scale(), 1.0);
}

TEST(HeteroPlacement, MatchingSpecsAreNotASplitEvenWhenNamed) {
  Planner planner;
  serve::ServePlannerOptions options;
  options.min_context_bucket = 64;
  options.prefill_backend = "edge";
  options.decode_backend = "edge";
  serve::ServePlanner sp(planner, EdgeSimConfig(), BertBaseGeometry(), options);
  EXPECT_FALSE(sp.split_placement());
}

}  // namespace
}  // namespace mas::sim
