// mas_lint — determinism & concurrency static analysis over the tree.
//
//   mas_lint [--list] [--rules=a,b] [--allowlist=FILE|none] PATH...
//
// PATHs are files or directories (recursed; .h/.hpp/.cpp/.cc/.cxx). The CI
// gate is `mas_lint src tools tests`: deterministic `file:line: rule:
// message` lines on stdout, a summary on stderr, exit 1 on any finding.
// Suppressions: `// mas-lint: allow(<rule>) <reason>` inline, or the
// checked-in allowlist (tools/lint_allow.txt, auto-loaded when present
// relative to the working directory; --allowlist=none disables).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/args.h"
#include "common/status.h"
#include "lint/lint.h"

namespace {

using namespace mas;  // MAS_CHECK expands to unqualified SourceLocation

namespace fs = std::filesystem;

constexpr const char* kDefaultAllowlist = "tools/lint_allow.txt";

bool HasLintableExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc" || ext == ".cxx";
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MAS_CHECK(in.good()) << "cannot open '" << path << "'";
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// Expands the positional paths into a sorted, deduplicated list of source
// files. Explicit file arguments are always taken (any extension);
// directories are walked recursively for lintable extensions. Sorting the
// generic '/'-separated paths keeps output byte-identical across platforms
// and argument orders.
std::vector<std::string> CollectFiles(const std::vector<std::string>& paths) {
  std::vector<std::string> files;
  for (const std::string& arg : paths) {
    const fs::path p(arg);
    MAS_CHECK(fs::exists(p)) << "no such file or directory: '" << arg << "'";
    if (fs::is_directory(p)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (entry.is_regular_file() && HasLintableExtension(entry.path())) {
          files.push_back(entry.path().generic_string());
        }
      }
    } else {
      files.push_back(p.generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::vector<std::string> SplitCsv(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int Main(int argc, char** argv) {
  mas::cli::ArgParser args(
      "Determinism & concurrency static analysis (tokenizer + per-rule matchers).\n"
      "Exits 0 when clean, 1 on findings. Gate: mas_lint src tools tests");
  bool* list = args.AddBool("list", false, "print the rule catalog and exit");
  std::string* rules = args.AddString(
      "rules", "", "comma-separated rule names to run (default: all; unknown names error)");
  std::string* allowlist = args.AddString(
      "allowlist", "",
      std::string("allowlist file of '<rule> <path-suffix> <reason>' entries (default: ") +
          kDefaultAllowlist + " when present; 'none' disables)");
  if (!args.Parse(argc, argv)) return 0;

  mas::lint::LintRuleRegistry& registry = mas::lint::LintRuleRegistry::Instance();
  if (*list) {
    for (const mas::lint::LintRuleInfo& info : registry.List()) {
      std::printf("%-22s %s\n", info.name.c_str(), info.summary.c_str());
    }
    return 0;
  }

  MAS_CHECK(!args.positional().empty())
      << "no paths given; usage: mas_lint [--list] [--rules=a,b] [--allowlist=FILE] PATH...";

  mas::lint::LintOptions options;
  options.rules = SplitCsv(*rules);
  std::string allowlist_path = *allowlist;
  if (allowlist_path.empty() && fs::exists(kDefaultAllowlist)) {
    allowlist_path = kDefaultAllowlist;
  }
  if (!allowlist_path.empty() && allowlist_path != "none") {
    options.allowlist = mas::lint::ParseAllowlist(ReadFile(allowlist_path), allowlist_path);
  }

  std::vector<mas::lint::SourceFile> sources;
  for (const std::string& path : CollectFiles(args.positional())) {
    sources.push_back(mas::lint::SourceFile{path, ReadFile(path)});
  }

  const mas::lint::LintReport report = mas::lint::RunLint(sources, options);
  std::fputs(mas::lint::FormatFindings(report.findings).c_str(), stdout);
  std::fprintf(stderr, "mas_lint: %zu finding(s), %lld suppressed, %lld file(s) scanned\n",
               report.findings.size(), static_cast<long long>(report.suppressed),
               static_cast<long long>(report.files_scanned));
  return report.findings.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Main(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mas_lint: %s\n", e.what());
    return 2;
  }
}
