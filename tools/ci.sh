#!/usr/bin/env bash
# Local CI replica: configure, build, test, and smoke-run a tiny sweep plus
# the engine microbenchmark (Release is the default build type).
# Usage: tools/ci.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# Smoke: a tiny sweep must succeed and be deterministic across thread counts.
"$BUILD_DIR/mas_run" --methods=MAS-Attention,FLAT --seq=64,128 --heads=2 --embed=16 \
    --jobs=1 --format=json > "$BUILD_DIR/smoke_jobs1.json"
"$BUILD_DIR/mas_run" --methods=MAS-Attention,FLAT --seq=64,128 --heads=2 --embed=16 \
    --jobs=8 --format=json > "$BUILD_DIR/smoke_jobs8.json"
cmp "$BUILD_DIR/smoke_jobs1.json" "$BUILD_DIR/smoke_jobs8.json"

# Engine perf trajectory: the quick seed-path vs event-engine comparison also
# asserts byte-identical outputs across engines and thread counts. No timing
# thresholds — BENCH_engine.json just records the numbers per commit.
"$BUILD_DIR/bench_engine_micro" --quick --jobs=8 --out="$BUILD_DIR/BENCH_engine.json"

echo "ci: build + tests + sweep smoke + engine bench OK"
