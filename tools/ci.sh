#!/usr/bin/env bash
# Local CI replica: configure, build, test, and smoke-run a tiny sweep, the
# plan-cache determinism check, and the engine microbenchmark (Release is the
# default build type), then a Debug ASan/UBSan pass over the registry/planner
# surface.
# Usage: tools/ci.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"

# Static analysis gate: the determinism & concurrency lint must be clean
# (inline `mas-lint: allow(...)` and tools/lint_allow.txt are the only
# sanctioned escape hatches — see src/lint/lint.h for the rule catalog).
"$BUILD_DIR/mas_lint" src tools tests

# clang-tidy (curated profile in .clang-tidy) over the library sources via
# the exported compilation database. Skipped when clang-tidy is not
# installed locally; CI always runs it.
if command -v clang-tidy > /dev/null 2>&1; then
  mapfile -t TIDY_SOURCES < <(find src -name '*.cpp' | sort)
  clang-tidy -p "$BUILD_DIR" --quiet "${TIDY_SOURCES[@]}"
else
  echo "ci: clang-tidy not found; skipping tidy step" >&2
fi

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# Smoke: a tiny sweep must succeed and be deterministic across thread counts.
"$BUILD_DIR/mas_run" --methods=MAS-Attention,FLAT --seq=64,128 --heads=2 --embed=16 \
    --jobs=1 --format=json > "$BUILD_DIR/smoke_jobs1.json"
"$BUILD_DIR/mas_run" --methods=MAS-Attention,FLAT --seq=64,128 --heads=2 --embed=16 \
    --jobs=8 --format=json > "$BUILD_DIR/smoke_jobs8.json"
cmp "$BUILD_DIR/smoke_jobs1.json" "$BUILD_DIR/smoke_jobs8.json"

# Plan-cache determinism: the cold run tunes and persists plans; the warm run
# must perform ZERO search evaluations and emit byte-identical report JSON,
# and re-saving the loaded plans must leave the cache file byte-identical.
rm -f "$BUILD_DIR/smoke_plans.json"
"$BUILD_DIR/mas_run" --methods=MAS-Attention,FLAT --seq=64,128 --heads=2 --embed=16 \
    --plan-cache="$BUILD_DIR/smoke_plans.json" --format=json \
    > "$BUILD_DIR/smoke_plan_cold.json" 2> "$BUILD_DIR/smoke_plan_cold.err"
cp "$BUILD_DIR/smoke_plans.json" "$BUILD_DIR/smoke_plans_cold.json"
"$BUILD_DIR/mas_run" --methods=MAS-Attention,FLAT --seq=64,128 --heads=2 --embed=16 \
    --plan-cache="$BUILD_DIR/smoke_plans.json" --format=json \
    > "$BUILD_DIR/smoke_plan_warm.json" 2> "$BUILD_DIR/smoke_plan_warm.err"
cmp "$BUILD_DIR/smoke_plan_cold.json" "$BUILD_DIR/smoke_plan_warm.json"
cmp "$BUILD_DIR/smoke_plans_cold.json" "$BUILD_DIR/smoke_plans.json"
grep -q "tuned 0 (0 search evaluations)" "$BUILD_DIR/smoke_plan_warm.err"

# Engine perf trajectory: the quick seed-path vs event-engine comparison also
# asserts byte-identical outputs across engines and thread counts. No timing
# thresholds — BENCH_engine.json just records the numbers per commit.
"$BUILD_DIR/bench_engine_micro" --quick --jobs=8 --out="$BUILD_DIR/BENCH_engine.json"

# Paper-artifact suite driver: the catalog must enumerate, and a warm-cache
# re-run of the Table-2 suite must perform ZERO search evaluations while
# emitting byte-identical BENCH_table2.json and plan-cache bytes.
"$BUILD_DIR/mas_bench" --list
rm -f "$BUILD_DIR/bench_plans.json"
"$BUILD_DIR/mas_bench" --suite=table2 --jobs="$JOBS" \
    --plan-cache="$BUILD_DIR/bench_plans.json" --out-dir="$BUILD_DIR" \
    > /dev/null 2> "$BUILD_DIR/bench_cold.err"
cp "$BUILD_DIR/BENCH_table2.json" "$BUILD_DIR/BENCH_table2_cold.json"
cp "$BUILD_DIR/bench_plans.json" "$BUILD_DIR/bench_plans_cold.json"
"$BUILD_DIR/mas_bench" --suite=table2 --jobs="$JOBS" \
    --plan-cache="$BUILD_DIR/bench_plans.json" --out-dir="$BUILD_DIR" \
    > /dev/null 2> "$BUILD_DIR/bench_warm.err"
cmp "$BUILD_DIR/BENCH_table2_cold.json" "$BUILD_DIR/BENCH_table2.json"
cmp "$BUILD_DIR/bench_plans_cold.json" "$BUILD_DIR/bench_plans.json"
grep -q "tuned 0 (0 search evaluations)" "$BUILD_DIR/bench_warm.err"

# Serving simulator: a small trace cold then warm against one plan cache.
# The warm run must perform ZERO search evaluations and reproduce both the
# mas_serve --out JSON and the serve suite's BENCH_serve_*.json byte for
# byte (the BENCH run also exercises the suite path with a separate cache).
rm -f "$BUILD_DIR/serve_plans.json"
"$BUILD_DIR/mas_serve" --trace=chat --requests=4 --max-batch=2 --jobs="$JOBS" \
    --plan-cache="$BUILD_DIR/serve_plans.json" --out="$BUILD_DIR/serve_cold.json" \
    > /dev/null 2> "$BUILD_DIR/serve_cold.err"
"$BUILD_DIR/mas_serve" --trace=chat --requests=4 --max-batch=2 --jobs="$JOBS" \
    --plan-cache="$BUILD_DIR/serve_plans.json" --out="$BUILD_DIR/serve_warm.json" \
    > /dev/null 2> "$BUILD_DIR/serve_warm.err"
cmp "$BUILD_DIR/serve_cold.json" "$BUILD_DIR/serve_warm.json"
grep -q "tuned 0 (0 search evaluations)" "$BUILD_DIR/serve_warm.err"
rm -f "$BUILD_DIR/serve_bench_plans.json"
"$BUILD_DIR/mas_bench" --suite=serve_llm_chat --jobs="$JOBS" \
    --plan-cache="$BUILD_DIR/serve_bench_plans.json" --out-dir="$BUILD_DIR" \
    > /dev/null 2> /dev/null
cp "$BUILD_DIR/BENCH_serve_llm_chat.json" "$BUILD_DIR/BENCH_serve_llm_chat_cold.json"
"$BUILD_DIR/mas_bench" --suite=serve_llm_chat --jobs="$JOBS" \
    --plan-cache="$BUILD_DIR/serve_bench_plans.json" --out-dir="$BUILD_DIR" \
    > /dev/null 2> "$BUILD_DIR/serve_bench_warm.err"
cmp "$BUILD_DIR/BENCH_serve_llm_chat_cold.json" "$BUILD_DIR/BENCH_serve_llm_chat.json"
grep -q "tuned 0 (0 search evaluations)" "$BUILD_DIR/serve_bench_warm.err"

# Open-loop load generation + SLO engine: an --arrival run cold then warm
# against one plan cache (warm: ZERO search evaluations, byte-identical
# --out JSON), and the serve_slo_sweep suite twice (byte-identical
# BENCH_serve_slo_sweep.json — percentiles, attainment, and the adaptive
# variant included).
rm -f "$BUILD_DIR/arrival_plans.json"
"$BUILD_DIR/mas_serve" --trace=chat --requests=6 --arrival=poisson:rate=96 \
    --slo-ttft-us=2000 --slo-tpot-us=400 --max-batch=2 --jobs="$JOBS" \
    --plan-cache="$BUILD_DIR/arrival_plans.json" --out="$BUILD_DIR/arrival_cold.json" \
    > /dev/null 2> "$BUILD_DIR/arrival_cold.err"
"$BUILD_DIR/mas_serve" --trace=chat --requests=6 --arrival=poisson:rate=96 \
    --slo-ttft-us=2000 --slo-tpot-us=400 --max-batch=2 --jobs="$JOBS" \
    --plan-cache="$BUILD_DIR/arrival_plans.json" --out="$BUILD_DIR/arrival_warm.json" \
    > /dev/null 2> "$BUILD_DIR/arrival_warm.err"
cmp "$BUILD_DIR/arrival_cold.json" "$BUILD_DIR/arrival_warm.json"
grep -q "tuned 0 (0 search evaluations)" "$BUILD_DIR/arrival_warm.err"
rm -f "$BUILD_DIR/slo_sweep_plans.json"
"$BUILD_DIR/mas_bench" --suite=serve_slo_sweep --jobs="$JOBS" \
    --plan-cache="$BUILD_DIR/slo_sweep_plans.json" --out-dir="$BUILD_DIR" \
    > /dev/null 2> /dev/null
cp "$BUILD_DIR/BENCH_serve_slo_sweep.json" "$BUILD_DIR/BENCH_serve_slo_sweep_cold.json"
"$BUILD_DIR/mas_bench" --suite=serve_slo_sweep --jobs="$JOBS" \
    --plan-cache="$BUILD_DIR/slo_sweep_plans.json" --out-dir="$BUILD_DIR" \
    > /dev/null 2> "$BUILD_DIR/slo_sweep_warm.err"
cmp "$BUILD_DIR/BENCH_serve_slo_sweep_cold.json" "$BUILD_DIR/BENCH_serve_slo_sweep.json"
grep -q "tuned 0 (0 search evaluations)" "$BUILD_DIR/slo_sweep_warm.err"

# Fault injection + resilience: a faulted, policy-on run must be
# byte-deterministic across --jobs, and the serve_resilience suite must
# replay byte-identically cold vs warm against one plan cache.
"$BUILD_DIR/mas_serve" --trace=chat --requests=6 --arrival=poisson:rate=256 \
    --fault=crash:prob=0.4 --max-retries=2 --deadline-ttft-us=8000 \
    --deadline-total-us=60000 --shed-late --admission-queue-cap=4 \
    --max-batch=2 --jobs=1 --out="$BUILD_DIR/fault_jobs1.json" > /dev/null
"$BUILD_DIR/mas_serve" --trace=chat --requests=6 --arrival=poisson:rate=256 \
    --fault=crash:prob=0.4 --max-retries=2 --deadline-ttft-us=8000 \
    --deadline-total-us=60000 --shed-late --admission-queue-cap=4 \
    --max-batch=2 --jobs=8 --out="$BUILD_DIR/fault_jobs8.json" > /dev/null
cmp "$BUILD_DIR/fault_jobs1.json" "$BUILD_DIR/fault_jobs8.json"
rm -f "$BUILD_DIR/resilience_plans.json"
"$BUILD_DIR/mas_bench" --suite=serve_resilience --jobs="$JOBS" \
    --plan-cache="$BUILD_DIR/resilience_plans.json" --out-dir="$BUILD_DIR" \
    > /dev/null 2> /dev/null
cp "$BUILD_DIR/BENCH_serve_resilience.json" "$BUILD_DIR/BENCH_serve_resilience_cold.json"
"$BUILD_DIR/mas_bench" --suite=serve_resilience --jobs="$JOBS" \
    --plan-cache="$BUILD_DIR/resilience_plans.json" --out-dir="$BUILD_DIR" \
    > /dev/null 2> "$BUILD_DIR/resilience_warm.err"
cmp "$BUILD_DIR/BENCH_serve_resilience_cold.json" "$BUILD_DIR/BENCH_serve_resilience.json"
grep -q "tuned 0 (0 search evaluations)" "$BUILD_DIR/resilience_warm.err"

# Fleet router: a multi-device routed run must be byte-deterministic across
# --jobs (p2c's per-dispatch seeded RNG included), and the serve_fleet suite
# must replay byte-identically cold vs warm against one plan cache with ZERO
# warm search evaluations (all devices share the suite's Planner).
"$BUILD_DIR/mas_fleet" --trace=chat --requests=6 --devices=4 --router=p2c \
    --synth-tenants=3 --tenants=weighted:t0=2,t1=1,t2=1 --max-batch=2 \
    --jobs=1 --out="$BUILD_DIR/fleet_jobs1.json" > /dev/null
"$BUILD_DIR/mas_fleet" --trace=chat --requests=6 --devices=4 --router=p2c \
    --synth-tenants=3 --tenants=weighted:t0=2,t1=1,t2=1 --max-batch=2 \
    --jobs=8 --out="$BUILD_DIR/fleet_jobs8.json" > /dev/null
cmp "$BUILD_DIR/fleet_jobs1.json" "$BUILD_DIR/fleet_jobs8.json"
rm -f "$BUILD_DIR/fleet_plans.json"
"$BUILD_DIR/mas_bench" --suite=serve_fleet --jobs="$JOBS" \
    --plan-cache="$BUILD_DIR/fleet_plans.json" --out-dir="$BUILD_DIR" \
    > /dev/null 2> /dev/null
cp "$BUILD_DIR/BENCH_serve_fleet.json" "$BUILD_DIR/BENCH_serve_fleet_cold.json"
"$BUILD_DIR/mas_bench" --suite=serve_fleet --jobs="$JOBS" \
    --plan-cache="$BUILD_DIR/fleet_plans.json" --out-dir="$BUILD_DIR" \
    > /dev/null 2> "$BUILD_DIR/fleet_warm.err"
cmp "$BUILD_DIR/BENCH_serve_fleet_cold.json" "$BUILD_DIR/BENCH_serve_fleet.json"
grep -q "tuned 0 (0 search evaluations)" "$BUILD_DIR/fleet_warm.err"

# Heterogeneous placement: a mixed-backend fleet (registry specs cycled
# across device slots, plus a phase split on every device) must be
# byte-deterministic across --jobs, and the serve_hetero_pareto suite must
# replay byte-identically cold vs warm against one plan cache with ZERO
# warm search evaluations (phase plans key on each backend's CacheKey).
"$BUILD_DIR/mas_fleet" --trace=chat --requests=6 --devices=3 \
    --device-hw='edge;npu;gpu:sms=2' --prefill-backend=gpu:sms=2 --max-batch=2 \
    --jobs=1 --out="$BUILD_DIR/hetero_jobs1.json" > /dev/null
"$BUILD_DIR/mas_fleet" --trace=chat --requests=6 --devices=3 \
    --device-hw='edge;npu;gpu:sms=2' --prefill-backend=gpu:sms=2 --max-batch=2 \
    --jobs=8 --out="$BUILD_DIR/hetero_jobs8.json" > /dev/null
cmp "$BUILD_DIR/hetero_jobs1.json" "$BUILD_DIR/hetero_jobs8.json"
rm -f "$BUILD_DIR/hetero_plans.json"
"$BUILD_DIR/mas_bench" --suite=serve_hetero_pareto --jobs="$JOBS" \
    --plan-cache="$BUILD_DIR/hetero_plans.json" --out-dir="$BUILD_DIR" \
    > /dev/null 2> /dev/null
cp "$BUILD_DIR/BENCH_serve_hetero_pareto.json" "$BUILD_DIR/BENCH_serve_hetero_pareto_cold.json"
"$BUILD_DIR/mas_bench" --suite=serve_hetero_pareto --jobs="$JOBS" \
    --plan-cache="$BUILD_DIR/hetero_plans.json" --out-dir="$BUILD_DIR" \
    > /dev/null 2> "$BUILD_DIR/hetero_warm.err"
cmp "$BUILD_DIR/BENCH_serve_hetero_pareto_cold.json" "$BUILD_DIR/BENCH_serve_hetero_pareto.json"
grep -q "tuned 0 (0 search evaluations)" "$BUILD_DIR/hetero_warm.err"

# Debug + ASan/UBSan pass over the new public surface (registry, strategies,
# JSON reader, planner, and the serving stack: session, SLO engine, arrival
# and fault models, fleet router). Builds only the targets it runs to keep
# the job bounded; the golden planner sweep stays in the Release ctest above.
SAN_DIR="${BUILD_DIR}-asan"
cmake -B "$SAN_DIR" -S . -DCMAKE_BUILD_TYPE=Debug -DMAS_SANITIZE=ON \
    -DMAS_BUILD_BENCHES=OFF -DMAS_BUILD_EXAMPLES=OFF
cmake --build "$SAN_DIR" -j "$JOBS" \
    --target test_registry test_json_reader test_planner \
    test_serve test_serve_slo test_arrival test_fault test_fleet test_backend
"$SAN_DIR/test_registry"
"$SAN_DIR/test_json_reader"
"$SAN_DIR/test_planner"
"$SAN_DIR/test_serve"
"$SAN_DIR/test_serve_slo"
"$SAN_DIR/test_arrival"
"$SAN_DIR/test_fault"
"$SAN_DIR/test_fleet"
"$SAN_DIR/test_backend"

# ThreadSanitizer pass over the concurrent batteries (worker pools, the
# parallel sweep runner, fleet routing, and the SLO engine's threaded
# replay). RelWithDebInfo keeps the instrumented run bounded on one core.
TSAN_DIR="${BUILD_DIR}-tsan"
cmake -B "$TSAN_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMAS_SANITIZE=thread \
    -DMAS_BUILD_BENCHES=OFF -DMAS_BUILD_EXAMPLES=OFF
cmake --build "$TSAN_DIR" -j "$JOBS" \
    --target test_search_parallel test_sweep_runner test_fleet test_serve_slo
"$TSAN_DIR/test_search_parallel"
"$TSAN_DIR/test_sweep_runner"
"$TSAN_DIR/test_fleet"
"$TSAN_DIR/test_serve_slo"

echo "ci: build + lint + tests + sweep smoke + plan-cache smoke + engine bench + mas_bench smoke + mas_serve smoke + slo-sweep smoke + resilience smoke + fleet smoke + hetero smoke + asan + tsan OK"
