// mas_run: simulate attention schedulers from the command line.
//
// Examples:
//   # one Table-1 network, every method, tuned tilings, text table
//   $ mas_run --network "BERT-Base & T5-Base"
//
//   # custom shape (B,H,N,E[,Nkv]) with an explicit tiling, JSON output
//   $ mas_run --shape 1,12,512,64 --method MAS-Attention \
//             --tiling 1,1,64,512 --format json
//
//   # cross-attention decode step on the NPU preset with a tighter L1
//   $ mas_run --shape 1,32,1,128,4096 --hw npu --l1-mb 2
//
//   # export the MAS schedule timeline for chrome://tracing
//   $ mas_run --network BERT-Small --method MAS-Attention --trace /tmp/mas
#include <cstdio>
#include <iostream>
#include <sstream>
#include <vector>

#include "cli/args.h"
#include "common/table.h"
#include "dataflow/workloads.h"
#include "report/json_report.h"
#include "schedulers/scheduler.h"
#include "search/tiling_search.h"
#include "sim/hardware_config.h"
#include "trace/trace.h"

namespace {

using namespace mas;

std::vector<std::int64_t> ParseIntList(const std::string& text) {
  std::vector<std::int64_t> values;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    MAS_CHECK(!item.empty()) << "empty element in list '" << text << "'";
    values.push_back(std::atoll(item.c_str()));
  }
  return values;
}

AttentionShape ShapeFromFlag(const std::string& text) {
  const auto v = ParseIntList(text);
  MAS_CHECK(v.size() == 4 || v.size() == 5)
      << "--shape expects B,H,N,E or B,H,N,E,Nkv; got '" << text << "'";
  AttentionShape shape{"custom", v[0], v[1], v[2], v[3], v.size() == 5 ? v[4] : 0};
  shape.Validate();
  return shape;
}

std::vector<Method> MethodsFromFlag(const std::string& text) {
  if (text == "all") return AllMethods();
  for (Method m : AllMethods()) {
    if (text == MethodName(m)) return {m};
  }
  if (text == MethodName(Method::kMasNoOverwrite)) return {Method::kMasNoOverwrite};
  std::string options;
  for (Method m : AllMethods()) options += std::string(" '") + MethodName(m) + "'";
  MAS_FAIL() << "unknown method '" << text << "'; options: all" << options;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mas;
  cli::ArgParser parser(
      "mas_run — simulate attention dataflow schedulers (MAS-Attention reproduction)");
  const std::string* network = parser.AddString("network", "", "Table-1 network name");
  const std::string* shape_flag =
      parser.AddString("shape", "", "custom shape B,H,N,E[,Nkv] (overrides --network)");
  const std::string* method_flag =
      parser.AddString("method", "all", "method name or 'all'");
  const std::string* hw_flag = parser.AddString("hw", "edge", "hardware preset: edge | npu");
  const std::int64_t* l1_mb = parser.AddInt("l1-mb", 0, "override L1 capacity (MiB)");
  const std::int64_t* cores = parser.AddInt("cores", 0, "override core count");
  const double* bandwidth =
      parser.AddDouble("bandwidth-gbs", 0.0, "override DRAM bandwidth (GB/s)");
  const std::string* tiling_flag =
      parser.AddString("tiling", "", "fixed tiling Bb,Hh,Nq,Nkv (default: autotune)");
  const std::string* format = parser.AddString("format", "table", "output: table | json");
  const std::string* trace_prefix =
      parser.AddString("trace", "", "export timeline (<prefix>.trace.json/.timeline.csv)");

  try {
    if (!parser.Parse(argc, argv)) return 0;

    sim::HardwareConfig hw =
        *hw_flag == "npu" ? sim::DavinciNpuConfig() : sim::EdgeSimConfig();
    MAS_CHECK(*hw_flag == "npu" || *hw_flag == "edge")
        << "unknown --hw '" << *hw_flag << "' (edge | npu)";
    if (*l1_mb > 0) hw.l1_bytes = *l1_mb * 1024 * 1024;
    if (*cores > 0) {
      MAS_CHECK(*cores <= 64) << "--cores out of range";
      const sim::CoreConfig proto = hw.cores.front();
      hw.cores.assign(static_cast<std::size_t>(*cores), proto);
    }
    if (*bandwidth > 0.0) hw.dram_gb_per_s = *bandwidth;

    AttentionShape shape;
    if (!shape_flag->empty()) {
      shape = ShapeFromFlag(*shape_flag);
    } else if (!network->empty()) {
      shape = FindNetwork(*network).shape;
    } else {
      shape = FindNetwork("BERT-Base & T5-Base").shape;
    }

    const sim::EnergyModel em;
    const std::vector<Method> methods = MethodsFromFlag(*method_flag);

    std::vector<report::NamedRun> runs;
    for (Method m : methods) {
      const auto sched = MakeScheduler(m);
      TilingConfig tiling;
      if (!tiling_flag->empty()) {
        const auto v = ParseIntList(*tiling_flag);
        MAS_CHECK(v.size() == 4) << "--tiling expects Bb,Hh,Nq,Nkv";
        tiling = TilingConfig{v[0], v[1], v[2], v[3]};
        MAS_CHECK(sched->Fits(shape, tiling, hw))
            << tiling.ToString() << " does not fit for " << sched->name();
      } else {
        tiling = search::AutoTile(*sched, shape, hw, em);
      }
      const bool want_trace = !trace_prefix->empty() && methods.size() == 1;
      runs.push_back({m, tiling, sched->Simulate(shape, tiling, hw, em, want_trace)});
    }

    if (*format == "json") {
      std::cout << report::RunsJson(shape, hw, runs) << "\n";
    } else {
      MAS_CHECK(*format == "table") << "unknown --format '" << *format << "' (table | json)";
      std::cout << shape.ToString() << " on " << hw.name << "\n";
      TextTable table({"Method", "tiling", "Mcycles", "ms", "energy GpJ", "DRAM MB",
                       "MAC util", "overwrites"});
      for (const auto& run : runs) {
        const auto& r = run.result;
        table.AddRow({MethodName(run.method), run.tiling.ToString(),
                      FormatFixed(r.cycles / 1e6, 3),
                      FormatFixed(r.cycles / (hw.frequency_ghz * 1e6), 3),
                      FormatFixed(r.energy.total_pj() / 1e9, 3),
                      FormatFixed((r.dram_read_bytes + r.dram_write_bytes) / (1024.0 * 1024.0),
                                  2),
                      FormatPercent(r.MacUtilization()), std::to_string(r.overwrite_events)});
      }
      std::cout << table.ToString();
    }

    if (!trace_prefix->empty()) {
      MAS_CHECK(runs.size() == 1)
          << "--trace needs a single --method (got " << runs.size() << " runs)";
      const auto& r = runs.front().result;
      trace::WriteFile(*trace_prefix + ".trace.json",
                       trace::ChromeTraceJson(r, hw.frequency_ghz));
      trace::WriteFile(*trace_prefix + ".timeline.csv", trace::TimelineCsv(r));
      std::cerr << "wrote " << *trace_prefix << ".trace.json and " << *trace_prefix
                << ".timeline.csv\n";
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
