// mas_run: simulate attention schedulers from the command line.
//
// Single points and declarative sweeps share one path: flags build a
// runner::SweepGrid, the thread-pooled, Planner-backed runner::SweepRunner
// evaluates it, and the aggregated report is printed as a table or JSON.
// Identical grids print identical output for any --jobs value.
//
// Discovery flags are registry-driven: --list-methods walks the
// SchedulerRegistry (names, paper order, ablation flag), --list-networks the
// Table-1 catalog, and unknown names in --methods/--network/--strategy fail
// with the available set.
//
// Tuned tilings are durable artifacts: --plan-cache=FILE loads the plan
// store before the sweep and saves it after, so a second invocation
// warm-starts with zero search evaluations while printing byte-identical
// reports.
//
// Examples:
//   # one Table-1 network, every method, tuned tilings, text table
//   $ mas_run --network "BERT-Base & T5-Base"
//
//   # custom shape (B,H,N,E[,Nkv]) with an explicit tiling, JSON output
//   $ mas_run --shape 1,12,512,64 --methods MAS-Attention
//             --tiling 1,1,64,512 --format json           (one line)
//
//   # sweep: all methods x N in {128,256,...,4096} on 8 worker threads,
//   #        persisting the tuned tilings
//   $ mas_run --methods=all --seq=128:4096:*2 --jobs=8 --summary
//             --plan-cache=plans.json                     (one line)
//
//   # cross-attention decode step on the NPU preset with a tighter L1
//   $ mas_run --shape 1,32,1,128,4096 --hw npu --l1-mb 2
//
//   # what can I run?
//   $ mas_run --list-methods
//   $ mas_run --list-networks
//
//   # export the MAS schedule timeline for chrome://tracing
//   $ mas_run --network BERT-Small --methods MAS-Attention --trace /tmp/mas
#include <cstdio>
#include <iostream>
#include <sstream>
#include <vector>

#include "cli/args.h"
#include "cli/backend_flags.h"
#include "common/table.h"
#include "dataflow/workloads.h"
#include "planner/planner.h"
#include "runner/sweep_runner.h"
#include "schedulers/registry.h"
#include "schedulers/scheduler.h"
#include "search/strategy.h"
#include "sim/backend.h"
#include "sim/hardware_config.h"
#include "trace/trace.h"

namespace {

using namespace mas;

std::vector<std::int64_t> ParseIntList(const std::string& text) {
  std::vector<std::int64_t> values;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    MAS_CHECK(!item.empty()) << "empty element in list '" << text << "'";
    values.push_back(std::atoll(item.c_str()));
  }
  return values;
}

AttentionShape ShapeFromFlag(const std::string& text) {
  const auto v = ParseIntList(text);
  MAS_CHECK(v.size() == 4 || v.size() == 5)
      << "--shape expects B,H,N,E or B,H,N,E,Nkv; got '" << text << "'";
  AttentionShape shape{"custom", v[0], v[1], v[2], v[3], v.size() == 5 ? v[4] : 0};
  shape.Validate();
  return shape;
}

std::vector<Method> MethodsFromFlag(const std::string& text) {
  return ParseMethodList(text);  // registry-backed (schedulers/registry.h)
}

void PrintMethods() {
  TextTable table({"Method", "paper column", "ablation", "summary"});
  for (const SchedulerInfo& info : SchedulerRegistry::Instance().List()) {
    table.AddRow({info.name,
                  info.paper_column >= 0 ? std::to_string(info.paper_column) : "-",
                  info.is_ablation ? "yes" : "no", info.summary});
  }
  std::cout << table.ToString();
  std::cout << "\nSearch strategies (--strategy):\n";
  for (const search::StrategyInfo& info : search::StrategyRegistry::Instance().List()) {
    std::cout << "  " << info.name << " — " << info.summary << "\n";
  }
}

void PrintNetworks() {
  TextTable table({"Network", "B", "H", "N", "E", "hidden"});
  for (const NetworkWorkload& net : Table1Networks()) {
    table.AddRow({net.name, std::to_string(net.shape.batch), std::to_string(net.shape.heads),
                  std::to_string(net.shape.seq_len), std::to_string(net.shape.embed),
                  std::to_string(net.hidden)});
  }
  std::cout << table.ToString();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mas;
  cli::ArgParser parser(
      "mas_run — simulate attention dataflow schedulers (MAS-Attention reproduction)");
  const std::string* network = parser.AddString("network", "", "Table-1 network name");
  const std::string* shape_flag =
      parser.AddString("shape", "", "custom shape B,H,N,E[,Nkv] (overrides --network)");
  const std::string* methods_flag = parser.AddString(
      "methods", "all", "comma-separated method names, or 'all'");
  const std::string* method_alias =
      parser.AddString("method", "", "alias for --methods (kept for compatibility)");
  const bool* list_methods = parser.AddBool(
      "list-methods", false, "list the registered methods and search strategies, then exit");
  const bool* list_networks =
      parser.AddBool("list-networks", false, "list the Table-1 networks, then exit");
  const bool* list_backends = parser.AddBool(
      "list-backends", false, "list the registered hardware backends, then exit");
  const std::string* seq_flag = parser.AddString(
      "seq", "",
      "sweep query sequence lengths: N | a,b,c | start:end[:*k|:+k] (enables sweep mode)");
  const std::int64_t* batch = parser.AddInt("batch", 1, "sweep shape: batch size B");
  const std::int64_t* heads = parser.AddInt("heads", 12, "sweep shape: head count H");
  const std::int64_t* embed = parser.AddInt("embed", 64, "sweep shape: head embedding E");
  const std::int64_t* kv = parser.AddInt("kv", 0, "sweep shape: KV length (0 = self-attention)");
  const std::int64_t* jobs = parser.AddInt("jobs", 1, "worker threads for the sweep");
  const std::string* hw_flag = parser.AddString(
      "hw", "edge", "hardware backend spec backend[:key=value,...]; see --list-backends");
  const std::int64_t* l1_mb = parser.AddInt("l1-mb", 0, "override L1 capacity (MiB)");
  const std::int64_t* cores = parser.AddInt("cores", 0, "override core count");
  const double* bandwidth =
      parser.AddDouble("bandwidth-gbs", 0.0, "override DRAM bandwidth (GB/s)");
  const std::string* tiling_flag =
      parser.AddString("tiling", "", "fixed tiling Bb,Hh,Nq,Nkv (default: autotune)");
  const std::string* strategy_flag = parser.AddString(
      "strategy", "auto",
      "tiling search strategy: auto (coarse grid) | grid | ga | mcts");
  const std::int64_t* budget =
      parser.AddInt("search-budget", 0, "override the search evaluation budget (0 = default)");
  const std::int64_t* seed =
      parser.AddInt("search-seed", 0, "override the search rng seed (0 = default)");
  const std::string* plan_cache = parser.AddString(
      "plan-cache", "",
      "persist tuned tilings: load plans from FILE before the sweep, save after");
  const std::string* format = parser.AddString("format", "table", "output: table | json");
  const bool* summary = parser.AddBool(
      "summary", false, "also print the cross-method speedup table (table format)");
  const std::string* trace_prefix =
      parser.AddString("trace", "", "export timeline (<prefix>.trace.json/.timeline.csv)");

  try {
    if (!parser.Parse(argc, argv)) return 0;

    if (*list_methods) {
      PrintMethods();
      return 0;
    }
    if (*list_networks) {
      PrintNetworks();
      return 0;
    }
    if (*list_backends) {
      cli::PrintBackendCatalog(std::cout);
      return 0;
    }

    // Registry-resolved backend spec (unknown names throw the catalog); the
    // legacy override flags below still apply on top of any spec tunables.
    sim::HardwareConfig hw = sim::ResolveBackend(*hw_flag);
    if (*l1_mb > 0) hw.l1_bytes = *l1_mb * 1024 * 1024;
    if (*cores > 0) {
      MAS_CHECK(*cores <= 64) << "--cores out of range";
      const sim::CoreConfig proto = hw.cores.front();
      hw.cores.assign(static_cast<std::size_t>(*cores), proto);
    }
    if (*bandwidth > 0.0) hw.dram_gb_per_s = *bandwidth;

    runner::SweepGrid grid;
    MAS_CHECK(method_alias->empty() || *methods_flag == "all")
        << "--method and --methods are aliases; pass only one";
    grid.methods = MethodsFromFlag(method_alias->empty() ? *methods_flag : *method_alias);
    grid.hardware = {hw};
    if (!seq_flag->empty()) {
      MAS_CHECK(shape_flag->empty() && network->empty())
          << "--seq sweeps define shapes via --batch/--heads/--embed/--kv; drop "
             "--shape/--network";
      for (std::int64_t n : cli::ParseInt64Sequence(*seq_flag)) {
        AttentionShape shape{"seq" + std::to_string(n), *batch, *heads, n, *embed, *kv};
        shape.Validate();
        grid.shapes.push_back(std::move(shape));
      }
    } else if (!shape_flag->empty()) {
      grid.shapes.push_back(ShapeFromFlag(*shape_flag));
    } else if (!network->empty()) {
      grid.shapes.push_back(FindNetwork(*network).shape);
    } else {
      grid.shapes.push_back(FindNetwork("BERT-Base & T5-Base").shape);
    }
    if (!tiling_flag->empty()) {
      const auto v = ParseIntList(*tiling_flag);
      MAS_CHECK(v.size() == 4) << "--tiling expects Bb,Hh,Nq,Nkv";
      grid.tiling = TilingConfig{v[0], v[1], v[2], v[3]};
    }

    // The planner's search spec: "auto" is the coarse power-of-two grid (the
    // default offline-tuned configuration); any registered strategy name
    // selects that strategy at full fidelity.
    PlannerOptions planner_options;
    if (*strategy_flag != "auto") {
      // Validates the name against the registry (throws listing options).
      (void)search::StrategyRegistry::Instance().Get(*strategy_flag);
      planner_options.spec = search::SearchSpec{};
      planner_options.spec.strategy = *strategy_flag;
    }
    if (*budget > 0) planner_options.spec.budget = *budget;
    if (*seed > 0) planner_options.spec.seed = static_cast<std::uint64_t>(*seed);

    runner::SweepOptions options;
    options.jobs = static_cast<int>(*jobs);
    runner::SweepRunner sweep_runner(options, sim::EnergyModel{}, planner_options);

    std::size_t plans_loaded = 0;
    if (!plan_cache->empty()) {
      if (sweep_runner.planner().store().LoadFile(*plan_cache)) {
        plans_loaded = sweep_runner.planner().store().size();
      }
    }

    const runner::SweepReport report = sweep_runner.Run(grid);

    if (*format == "json") {
      std::cout << report.ToJson() << "\n";
    } else {
      MAS_CHECK(*format == "table")
          << "unknown --format '" << *format << "'; options: table, json";
      if (grid.shapes.size() == 1) {
        std::cout << grid.shapes.front().ToString() << " on " << hw.name << "\n";
      }
      std::cout << report.ToTable().ToString();
      if (*summary && grid.methods.size() > 1) {
        std::cout << "\n" << report.SpeedupTable().ToString();
      }
    }
    std::fprintf(stderr,
                 "sweep: %lld jobs (%lld simulated, %lld cache hits, %lld failed) on %lld "
                 "threads in %.3f s\n",
                 static_cast<long long>(report.stats.total_jobs),
                 static_cast<long long>(report.stats.simulated_jobs),
                 static_cast<long long>(report.stats.cache_hits),
                 static_cast<long long>(report.stats.failed_jobs),
                 static_cast<long long>(*jobs), report.stats.wall_seconds);
    if (!plan_cache->empty()) {
      sweep_runner.planner().store().SaveFile(*plan_cache);
      std::fprintf(stderr,
                   "plan-cache: loaded %lld plans, reused %lld, tuned %lld "
                   "(%lld search evaluations), saved %lld -> %s\n",
                   static_cast<long long>(plans_loaded),
                   static_cast<long long>(report.stats.plans_reused),
                   static_cast<long long>(sweep_runner.planner().plans_tuned()),
                   static_cast<long long>(report.stats.search_evaluations),
                   static_cast<long long>(sweep_runner.planner().store().size()),
                   plan_cache->c_str());
    }

    if (!trace_prefix->empty()) {
      MAS_CHECK(report.results.size() == 1)
          << "--trace needs a single method and shape (got " << report.results.size()
          << " runs)";
      const runner::JobResult& run = report.results.front();
      MAS_CHECK(run.ok()) << "cannot trace failed run: " << run.error;
      // Re-simulate the single resolved point with timeline recording on (the
      // sweep itself never records timelines — they are per-task-sized).
      const sim::EnergyModel em;
      const auto sched = SchedulerRegistry::Instance().Create(run.job.method);
      const sim::SimResult traced =
          sched->Simulate(run.job.shape, run.tiling, hw, em, /*record_timeline=*/true);
      trace::WriteFile(*trace_prefix + ".trace.json",
                       trace::ChromeTraceJson(traced, hw.frequency_ghz));
      trace::WriteFile(*trace_prefix + ".timeline.csv", trace::TimelineCsv(traced));
      std::cerr << "wrote " << *trace_prefix << ".trace.json and " << *trace_prefix
                << ".timeline.csv\n";
    }
    if (report.stats.failed_jobs > 0) {
      for (const auto& r : report.results) {
        if (!r.ok()) {
          std::cerr << "error: " << MethodName(r.job.method) << " on "
                    << r.job.shape.ToString() << ": " << r.error << "\n";
        }
      }
      return 1;
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
