// mas_bench: the registry-driven paper-artifact benchmark suite driver.
//
// Every figure/table the paper's evidence rests on is a named BenchSuite in
// the SuiteRegistry (src/benchsuite/); this driver selects suites, runs them
// on one shared SuiteContext (hardware presets + a thread-pooled,
// Planner-backed SweepRunner), prints the paper-style tables to stdout, and
// writes one deterministic BENCH_<suite>.json per suite.
//
// Tuned tilings are durable artifacts: --plan-cache=FILE loads the plan
// store before the suites run and saves it after, so a second invocation
// warm-starts with ZERO search evaluations while emitting byte-identical
// BENCH_*.json files. (Exception: the convergence suites fig7 /
// search_improvement and ablation_overwrite's quiet-tiling scan re-run
// their searches by design — the search itself is their artifact; their
// spend is reported separately on stderr.)
//
// Examples:
//   $ mas_bench --list
//   $ mas_bench --suite=table2 --plan-cache=plans.json
//   $ mas_bench --suite=table2,table3,fig6 --jobs=8 --out-dir=/tmp
//   $ mas_bench --all
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "benchsuite/suite.h"
#include "cli/args.h"
#include "common/json_writer.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace mas;
  cli::ArgParser parser(
      "mas_bench — regenerate the paper's figures/tables as registered benchmark suites");
  const bool* list =
      parser.AddBool("list", false, "list the registered suites, then exit");
  const std::string* suite_flag = parser.AddString(
      "suite", "", "comma-separated suite names to run (see --list), or 'all'");
  const bool* all = parser.AddBool("all", false, "run every registered suite");
  const std::int64_t* jobs =
      parser.AddInt("jobs", 0, "worker threads (0 = hardware concurrency)");
  const std::string* plan_cache = parser.AddString(
      "plan-cache", "",
      "persist tuned tilings: load plans from FILE before the suites, save after");
  const std::string* out_dir = parser.AddString(
      "out-dir", ".", "directory for the BENCH_<suite>.json outputs");
  const std::string* out_file = parser.AddString(
      "out", "", "explicit output path (only with a single selected suite)");
  const std::int64_t* search_budget = parser.AddInt(
      "search-budget", 0,
      "evaluation budget for the convergence suites (0 = per-suite default)");

  try {
    if (!parser.Parse(argc, argv)) return 0;

    bench::SuiteRegistry& registry = bench::SuiteRegistry::Instance();
    if (*list) {
      TextTable table({"Suite", "paper artifact", "description"});
      for (const bench::SuiteInfo& info : registry.List()) {
        table.AddRow({info.name, info.artifact, info.summary});
      }
      std::cout << table.ToString();
      std::cout << "\nRun with --suite=name[,name...] or --all; outputs land in "
                   "--out-dir as BENCH_<suite>.json.\n";
      return 0;
    }

    MAS_CHECK(*all || !suite_flag->empty())
        << "select suites with --suite=name[,name...] or --all (see --list)";
    MAS_CHECK(!*all || suite_flag->empty()) << "--all and --suite are exclusive";
    const std::vector<const bench::BenchSuite*> suites =
        registry.Resolve(*all ? "all" : *suite_flag);
    MAS_CHECK(out_file->empty() || suites.size() == 1)
        << "--out needs exactly one suite (got " << suites.size() << ")";

    bench::SuiteContext ctx(static_cast<int>(*jobs), std::cout, *search_budget);

    std::size_t plans_loaded = 0;
    if (!plan_cache->empty()) {
      if (ctx.planner().store().LoadFile(*plan_cache)) {
        plans_loaded = ctx.planner().store().size();
      }
    }
    // After a successful load, persist whatever has been tuned even when a
    // later suite throws — a failure in suite 17 of --all must not discard
    // the first 16 suites' searches.
    auto save_plans = [&] {
      if (plan_cache->empty()) return;
      ctx.planner().store().SaveFile(*plan_cache);
      std::fprintf(stderr, "plan-cache: loaded %lld plans, saved %lld -> %s\n",
                   static_cast<long long>(plans_loaded),
                   static_cast<long long>(ctx.planner().store().size()),
                   plan_cache->c_str());
    };

    try {
      for (const bench::BenchSuite* suite : suites) {
        const bench::SuiteInfo& info = suite->info();
        JsonWriter json;
        json.BeginObject();
        json.KeyValue("suite", info.name);
        json.KeyValue("artifact", info.artifact);
        suite->Run(ctx, json);
        json.EndObject();

        const std::string path =
            !out_file->empty() ? *out_file : *out_dir + "/BENCH_" + info.name + ".json";
        WriteFile(path, json.Take() + "\n");
        std::cout << "wrote " << path << "\n\n";
      }
    } catch (...) {
      save_plans();
      throw;
    }

    // Machine-greppable run summary (stderr, mirroring mas_run's format):
    // the warm-cache CI check asserts "tuned 0 (0 search evaluations)".
    std::fprintf(stderr,
                 "mas_bench: %zu suites, plans reused %lld, tuned %lld (%lld search "
                 "evaluations), %lld convergence-suite evaluations\n",
                 suites.size(), static_cast<long long>(ctx.planner().plans_reused()),
                 static_cast<long long>(ctx.planner().plans_tuned()),
                 static_cast<long long>(ctx.planner().search_evaluations()),
                 static_cast<long long>(ctx.extra_search_evaluations()));
    save_plans();
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
