// mas_serve: trace-driven LLM serving simulation from the command line.
//
// Plays a request trace (synthetic preset or JSON file) through the
// serve::ServeSession continuous-batching loop: each request prefills its
// prompt (MAS's compute-bound regime), then decodes token by token against
// its growing KV cache (DMA-bound, where scheduler selection flips — hence
// the independent --prefill-method/--decode-method). Context lengths bucket
// to powers of two, so a whole trace resolves to a handful of TuningPlans;
// with --plan-cache=FILE a second invocation replays the trace with ZERO
// search evaluations and byte-identical --out JSON.
//
// Open-loop load generation: --arrival=model[:key=value,...] replaces the
// preset's hand-picked arrival ticks with a stochastic arrival process
// (poisson | bursty | diurnal, serve/arrival.h) calibrated onto the tick
// clock by --cycles-per-tick. --slo-ttft-us/--slo-tpot-us score the run's
// SLO attainment; --adaptive/--coalesce-decode enable the load-adaptive
// session behaviors (MAS->FLAT decode relief under TTFT pressure, and
// round-level decode coalescing).
//
// Examples:
//   $ mas_serve --trace=chat
//   $ mas_serve --trace=decode_heavy --requests=8 --max-batch=4 --jobs=2
//   $ mas_serve --trace=mytrace.json --plan-cache=plans.json --out=serve.json
//   $ mas_serve --trace=chat --decode-method=MAS-Attention   # phase ablation
//   $ mas_serve --trace=chat --save-trace=chat.json          # export the preset
//   $ mas_serve --trace=chat --arrival=poisson:rate=128 --slo-ttft-us=2000
//   $ mas_serve --arrival=bursty:rate=64,burst=8 --adaptive --coalesce-decode \
//       --slo-ttft-us=2000 --decode-method=MAS-Attention
//
// Fault injection + resilience (serve/fault.h): --fault=kind[:key=value,...]
// injects seeded device faults (stall | derate | crash), and the policy
// flags — --deadline-ttft-us / --deadline-total-us / --max-retries /
// --retry-backoff-ticks / --admission-queue-cap / --shed-late — arm the
// recovery side. Everything is drawn from seeded streams keyed off the
// round index, so output is byte-identical across --jobs and reruns:
//   $ mas_serve --trace=chat --fault=crash:prob=0.05 --max-retries=2
//   $ mas_serve --arrival=poisson:rate=512 --deadline-ttft-us=8000 \
//       --shed-late --admission-queue-cap=8 --slo-ttft-us=6000
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "cli/args.h"
#include "cli/backend_flags.h"
#include "common/json_writer.h"
#include "common/table.h"
#include "serve/arrival.h"
#include "serve/session.h"
#include "serve/slo.h"
#include "sim/backend.h"
#include "sim/hardware_config.h"

int main(int argc, char** argv) {
  using namespace mas;
  cli::ArgParser parser(
      "mas_serve — trace-driven serving simulator (prefill/decode continuous batching)");
  const std::string* trace_flag = parser.AddString(
      "trace", "chat",
      "trace: preset name (chat | decode_heavy | mixed_sd) or path to a trace JSON file");
  const std::int64_t* requests = parser.AddInt(
      "requests", 0, "override the preset's request count (ignored for trace files)");
  const std::int64_t* max_batch =
      parser.AddInt("max-batch", 4, "in-flight request cap (continuous-batching window)");
  const std::int64_t* jobs =
      parser.AddInt("jobs", 1, "worker threads simulating a step's batch entries");
  const std::string* plan_cache = parser.AddString(
      "plan-cache", "",
      "persist tuned tilings: load plans from FILE before the trace, save after");
  const std::string* prefill_method =
      parser.AddString("prefill-method", "MAS-Attention", "scheduler for prefill phases");
  const std::string* decode_method =
      parser.AddString("decode-method", "FLAT", "scheduler for decode steps");
  const std::int64_t* bucket = parser.AddInt(
      "min-bucket", 64, "smallest power-of-two context bucket (plan-sharing granularity)");
  const std::string* hw_flag = parser.AddString(
      "hw", "edge", "hardware backend spec backend[:key=value,...]; see --list-backends");
  const std::string* prefill_backend = parser.AddString(
      "prefill-backend", "",
      "place prefill on its own backend spec (heterogeneous phase placement; "
      "empty = the --hw device)");
  const std::string* decode_backend = parser.AddString(
      "decode-backend", "", "place decode on its own backend spec (empty = the --hw device)");
  const bool* list_backends = parser.AddBool(
      "list-backends", false, "list the registered hardware backends, then exit");
  const std::string* out_file =
      parser.AddString("out", "", "write the machine-readable serve JSON to FILE");
  const std::string* save_trace = parser.AddString(
      "save-trace", "", "write the resolved trace JSON to FILE (e.g. to edit and replay)");
  const std::string* arrival_flag = parser.AddString(
      "arrival", "",
      "open-loop arrival model, model[:key=value,...] (poisson | bursty | diurnal); "
      "replaces the preset's arrival ticks");
  const double* cycles_per_tick = parser.AddDouble(
      "cycles-per-tick", 1e6, "device cycles one scheduling round represents (arrival "
      "calibration: rates are req/s at the device clock)");
  const double* slo_ttft_us = parser.AddDouble(
      "slo-ttft-us", 0.0, "TTFT SLO target in microseconds (0 = no target)");
  const double* slo_tpot_us = parser.AddDouble(
      "slo-tpot-us", 0.0, "TPOT SLO target in microseconds (0 = no target)");
  const bool* adaptive = parser.AddBool(
      "adaptive", false,
      "latch decode onto FLAT when the windowed TTFT slips past --slo-ttft-us");
  const bool* coalesce_decode = parser.AddBool(
      "coalesce-decode", false,
      "merge a round's concurrent ready decode steps into one N>1 simulation");
  const std::int64_t* pressure_window = parser.AddInt(
      "pressure-window", 4, "TTFT samples in the --adaptive pressure estimate");
  const std::string* fault_flag = parser.AddString(
      "fault", "",
      "seeded fault injection, kind[:key=value,...] (stall | derate | crash)");
  const std::int64_t* fault_seed =
      parser.AddInt("fault-seed", 0, "override the fault stream seed (0 = default)");
  const double* deadline_ttft_us = parser.AddDouble(
      "deadline-ttft-us", 0.0,
      "per-request TTFT deadline in microseconds; defines goodput and powers "
      "--shed-late (0 = none)");
  const double* deadline_total_us = parser.AddDouble(
      "deadline-total-us", 0.0,
      "per-request total deadline in microseconds; overdue requests are "
      "timeout-killed (0 = none)");
  const std::int64_t* max_retries = parser.AddInt(
      "max-retries", 0, "crash retries per request (a retry re-enters admission "
      "and recomputes its prefill)");
  const std::int64_t* retry_backoff_ticks = parser.AddInt(
      "retry-backoff-ticks", 1, "base retry backoff in ticks, doubling per attempt");
  const std::int64_t* admission_queue_cap = parser.AddInt(
      "admission-queue-cap", 0,
      "waiting-queue bound; arrivals beyond it are shed (0 = unbounded)");
  const bool* shed_late = parser.AddBool(
      "shed-late", false,
      "shed waiting requests whose --deadline-ttft-us budget is already spent");

  try {
    if (!parser.Parse(argc, argv)) return 0;
    if (*list_backends) {
      cli::PrintBackendCatalog(std::cout);
      return 0;
    }
    MAS_CHECK(parser.positional().empty())
        << "mas_serve takes no positional arguments (see --help)";

    // Registry-resolved backend spec: the base device whose clock defines
    // the session (arrival calibration, SLO/deadline conversion, JSON ms
    // figures). Phase placements below may move prefill/decode elsewhere.
    const sim::HardwareConfig hw = sim::ResolveBackend(*hw_flag);

    // --trace: an existing file loads as JSON; anything else is a preset.
    serve::RequestTrace trace;
    const bool trace_is_file = std::ifstream(*trace_flag).good();
    if (!arrival_flag->empty()) {
      MAS_CHECK(!trace_is_file)
          << "--arrival generates arrival ticks and cannot be combined with trace file '"
          << *trace_flag << "'; name a preset shape (chat | decode_heavy | mixed_sd)";
      serve::ArrivalCalibration calibration;
      calibration.frequency_ghz = hw.frequency_ghz;
      calibration.cycles_per_tick = *cycles_per_tick;
      const serve::ArrivalSpec arrival_spec = serve::ArrivalSpec::Parse(*arrival_flag);
      const std::unique_ptr<serve::ArrivalModel> model =
          serve::ArrivalModelRegistry::Instance().Create(arrival_spec, calibration);
      trace = serve::RequestTrace::FromArrivalModel(
          *model, serve::FindTracePreset(*trace_flag, *requests));
    } else if (trace_is_file) {
      trace = serve::RequestTrace::LoadFile(*trace_flag);
    } else {
      trace = serve::GenerateTrace(serve::FindTracePreset(*trace_flag, *requests));
    }
    if (!save_trace->empty()) {
      trace.SaveFile(*save_trace);
      std::cerr << "wrote trace " << *save_trace << "\n";
    }

    serve::ServePlannerOptions planner_options;
    planner_options.prefill_method = *prefill_method;
    planner_options.decode_method = *decode_method;
    planner_options.min_context_bucket = *bucket;
    planner_options.prefill_backend = *prefill_backend;
    planner_options.decode_backend = *decode_backend;

    Planner planner;
    std::size_t plans_loaded = 0;
    if (!plan_cache->empty()) {
      if (planner.store().LoadFile(*plan_cache)) plans_loaded = planner.store().size();
    }

    MAS_CHECK(*max_batch >= 1 && *max_batch <= 4096)
        << "--max-batch must be in [1, 4096], got " << *max_batch;
    MAS_CHECK(*jobs >= 1 && *jobs <= 4096) << "--jobs must be in [1, 4096], got " << *jobs;
    serve::ServePlanner serve_planner(planner, hw, Llama3Geometry(), planner_options);
    serve::ServeSessionOptions session_options;
    session_options.max_batch = static_cast<int>(*max_batch);
    session_options.jobs = static_cast<int>(*jobs);
    session_options.coalesce_decode = *coalesce_decode;
    if (*adaptive) {
      MAS_CHECK(*slo_ttft_us > 0.0) << "--adaptive needs a positive --slo-ttft-us target";
      MAS_CHECK(*pressure_window >= 1 && *pressure_window <= 4096)
          << "--pressure-window must be in [1, 4096], got " << *pressure_window;
      session_options.pressure.enabled = true;
      session_options.pressure.ttft_target_cycles = *slo_ttft_us * hw.frequency_ghz * 1e3;
      session_options.pressure.window = static_cast<int>(*pressure_window);
      session_options.pressure.relief_method = "FLAT";
    }
    const double cycles_per_us = hw.frequency_ghz * 1e3;
    if (!fault_flag->empty()) {
      session_options.fault = serve::FaultSpec::Parse(*fault_flag);
      if (*fault_seed != 0) {
        session_options.fault_seed = static_cast<std::uint64_t>(*fault_seed);
      }
    }
    MAS_CHECK(*deadline_ttft_us >= 0.0)
        << "--deadline-ttft-us must be non-negative, got " << *deadline_ttft_us;
    MAS_CHECK(*deadline_total_us >= 0.0)
        << "--deadline-total-us must be non-negative, got " << *deadline_total_us;
    serve::ResiliencePolicy& resilience = session_options.resilience;
    resilience.ttft_deadline_cycles =
        static_cast<std::uint64_t>(*deadline_ttft_us * cycles_per_us);
    resilience.total_deadline_cycles =
        static_cast<std::uint64_t>(*deadline_total_us * cycles_per_us);
    resilience.max_retries = *max_retries;
    resilience.retry_backoff_ticks = *retry_backoff_ticks;
    resilience.admission_queue_cap = *admission_queue_cap;
    resilience.shed_late = *shed_late;
    serve::ServeSession session(serve_planner, session_options);
    const serve::ServeResult result = session.Run(trace);

    serve::SloTargets slo_targets;
    slo_targets.ttft_us = *slo_ttft_us;
    slo_targets.tpot_us = *slo_tpot_us;
    const serve::SloReport slo = serve::EvaluateSlo(result, hw, slo_targets);

    std::cout << "=== mas_serve: trace '" << trace.name << "' on " << hw.name << " ===\n";
    std::cout << "prefill " << *prefill_method << " / decode " << *decode_method
              << ", max batch " << *max_batch << ", buckets pow2 >= " << *bucket << "\n";
    if (serve_planner.split_placement()) {
      std::cout << "placement: prefill on " << serve_planner.prefill_hw().name
                << ", decode on " << serve_planner.decode_hw().name
                << " (cycles reported on the " << hw.name << " clock)\n";
    }
    std::cout << "\n";
    serve::PrintReport(std::cout, result, hw, serve_planner.plan_count());
    if (slo_targets.HasTtft() || slo_targets.HasTpot()) {
      std::cout << "SLO attainment: TTFT " << slo.ttft_ok << "/" << slo.requests << " ("
                << FormatFixed(slo.TtftAttainment(), 3) << "), TPOT " << slo.tpot_ok << "/"
                << slo.decode_requests << " (" << FormatFixed(slo.TpotAttainment(), 3)
                << "), joint " << slo.joint_ok << "/" << slo.requests << " ("
                << FormatFixed(slo.JointAttainment(), 3) << ")\n";
      if (result.metrics.pressure_switch_tick >= 0) {
        std::cout << "pressure relief: decode switched to FLAT at round "
                  << result.metrics.pressure_switch_tick << "\n";
      }
    }

    if (!out_file->empty()) {
      JsonWriter json;
      json.BeginObject();
      json.KeyValue("tool", "mas_serve");
      serve::WriteConfigJson(json, hw, Llama3Geometry(), planner_options,
                             session_options.max_batch, serve_planner.plan_count());
      json.KeyValue("arrival", *arrival_flag);
      json.KeyValue("cycles_per_tick", *cycles_per_tick);
      json.KeyValue("adaptive", *adaptive);
      json.KeyValue("coalesce_decode", *coalesce_decode);
      // Resilience configuration echoes only when the layer is in play, so a
      // plain run's envelope stays byte-identical to the pre-fault schema.
      if (result.metrics.fault_layer_active) {
        json.KeyValue("fault", session_options.fault.enabled()
                                   ? session_options.fault.ToString()
                                   : std::string());
        json.KeyValue("fault_seed", session_options.fault_seed);
        json.KeyValue("deadline_ttft_us", *deadline_ttft_us);
        json.KeyValue("deadline_total_us", *deadline_total_us);
        json.KeyValue("max_retries", resilience.max_retries);
        json.KeyValue("retry_backoff_ticks", resilience.retry_backoff_ticks);
        json.KeyValue("admission_queue_cap", resilience.admission_queue_cap);
        json.KeyValue("shed_late", resilience.shed_late);
      }
      serve::WriteSloJson(json, slo_targets, slo);
      result.WriteJson(json, hw);
      json.EndObject();
      WriteFile(*out_file, json.Take() + "\n");
      std::cout << "wrote " << *out_file << "\n";
    }

    // Machine-greppable run summary (stderr, mirroring mas_run/mas_bench):
    // the warm-cache CI check asserts "tuned 0 (0 search evaluations)".
    const serve::ServeMetrics& m = result.metrics;
    std::fprintf(stderr,
                 "mas_serve: %lld requests, %lld steps, %lld plans, plans reused %lld, "
                 "tuned %lld (%lld search evaluations)\n",
                 static_cast<long long>(m.requests), static_cast<long long>(m.steps),
                 static_cast<long long>(serve_planner.plan_count()),
                 static_cast<long long>(planner.plans_reused()),
                 static_cast<long long>(planner.plans_tuned()),
                 static_cast<long long>(planner.search_evaluations()));
    if (!plan_cache->empty()) {
      planner.store().SaveFile(*plan_cache);
      std::fprintf(stderr, "plan-cache: loaded %lld plans, saved %lld -> %s\n",
                   static_cast<long long>(plans_loaded),
                   static_cast<long long>(planner.store().size()), plan_cache->c_str());
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
