// mas_fleet: multi-tenant sharded serving across a fleet of simulated
// devices.
//
// Dispatches a request trace (synthetic preset or JSON file) across
// --devices independent ServeSessions through a --router policy
// (round_robin | least_loaded | p2c | session_affinity, see src/fleet/),
// optionally reordering admission within each arrival tick by a --tenants
// policy (weighted-fair or priority). Every device has its own session
// clock and plan namespace; all devices share one plan store, so
// --plan-cache warms the whole fleet and a second invocation replays it
// with ZERO search evaluations and byte-identical --out JSON. Device
// sessions fan out across --jobs workers; output is byte-identical for any
// value.
//
// Examples:
//   $ mas_fleet --trace=chat --requests=32 --devices=4
//   $ mas_fleet --devices=8 --router=p2c --router-seed=7 \
//       --arrival=poisson:rate=1024 --slo-ttft-us=6000
//   $ mas_fleet --trace=chat --requests=24 --synth-tenants=3 \
//       --router=session_affinity --tenants=weighted:t0=2,t1=1,t2=1
//   $ mas_fleet --devices=4 --hw=mixed --fault=crash:prob=0.05 --max-retries=2
//   $ mas_fleet --devices=6 --device-hw='edge;npu;gpu:sms=4' --router=least_loaded
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "cli/args.h"
#include "cli/backend_flags.h"
#include "common/json_writer.h"
#include "common/table.h"
#include "fleet/fleet.h"
#include "serve/arrival.h"
#include "serve/slo.h"
#include "sim/backend.h"
#include "sim/hardware_config.h"

int main(int argc, char** argv) {
  using namespace mas;
  cli::ArgParser parser(
      "mas_fleet — multi-tenant fleet serving simulator (router over N devices)");
  const std::string* trace_flag = parser.AddString(
      "trace", "chat",
      "trace: preset name (chat | decode_heavy | mixed_sd) or path to a trace JSON file");
  const std::int64_t* requests = parser.AddInt(
      "requests", 0, "override the preset's request count (ignored for trace files)");
  const std::int64_t* devices = parser.AddInt("devices", 4, "simulated devices in the fleet");
  const std::string* router_flag = parser.AddString(
      "router", "round_robin",
      "dispatch policy, policy[:key=value,...] (round_robin | least_loaded | p2c | "
      "session_affinity)");
  const std::int64_t* router_seed = parser.AddInt(
      "router-seed", 0, "override the router's dispatch-stream seed (0 = default)");
  const std::int64_t* drain = parser.AddInt(
      "drain-tokens-per-tick", 32,
      "tokens each device is assumed to retire per arrival tick when draining the "
      "router's outstanding-token estimate (0 = no drain, cumulative totals)");
  const std::string* tenants_flag = parser.AddString(
      "tenants", "",
      "per-tenant admission policy, kind[:tenant=value,...] (weighted | priority)");
  const std::int64_t* synth_tenants = parser.AddInt(
      "synth-tenants", 0,
      "tag synthetic traces with N tenants t0..tN-1 (ignored for trace files)");
  const std::int64_t* max_batch = parser.AddInt(
      "max-batch", 4, "per-device in-flight request cap (continuous-batching window)");
  const std::int64_t* jobs =
      parser.AddInt("jobs", 1, "worker threads running device sessions");
  const std::string* plan_cache = parser.AddString(
      "plan-cache", "",
      "persist tuned tilings: load plans from FILE before the run, save after");
  const std::string* prefill_method =
      parser.AddString("prefill-method", "MAS-Attention", "scheduler for prefill phases");
  const std::string* decode_method =
      parser.AddString("decode-method", "FLAT", "scheduler for decode steps");
  const std::int64_t* bucket = parser.AddInt(
      "min-bucket", 64, "smallest power-of-two context bucket (plan-sharing granularity)");
  const std::string* hw_flag = parser.AddString(
      "hw", "edge",
      "fleet-wide hardware backend spec backend[:key=value,...], or 'mixed' "
      "(alternate edge/npu per device); see --list-backends");
  const std::string* device_hw_flag = parser.AddString(
      "device-hw", "",
      "per-device backend specs, ';'-separated and cycled across devices "
      "(e.g. 'edge;npu;gpu:sms=4'); overrides --hw");
  const std::string* prefill_backend = parser.AddString(
      "prefill-backend", "",
      "place every device's prefill on its own backend spec (empty = the device)");
  const std::string* decode_backend = parser.AddString(
      "decode-backend", "",
      "place every device's decode on its own backend spec (empty = the device)");
  const bool* list_backends = parser.AddBool(
      "list-backends", false, "list the registered hardware backends, then exit");
  const std::string* out_file =
      parser.AddString("out", "", "write the machine-readable fleet JSON to FILE");
  const std::string* save_trace = parser.AddString(
      "save-trace", "", "write the resolved trace JSON to FILE (e.g. to edit and replay)");
  const std::string* arrival_flag = parser.AddString(
      "arrival", "",
      "open-loop arrival model, model[:key=value,...] (poisson | bursty | diurnal); "
      "replaces the preset's arrival ticks");
  const double* cycles_per_tick = parser.AddDouble(
      "cycles-per-tick", 1e6, "device cycles one scheduling round represents (arrival "
      "calibration: rates are req/s at device 0's clock)");
  const double* slo_ttft_us = parser.AddDouble(
      "slo-ttft-us", 0.0, "TTFT SLO target in microseconds (0 = no target)");
  const double* slo_tpot_us = parser.AddDouble(
      "slo-tpot-us", 0.0, "TPOT SLO target in microseconds (0 = no target)");
  const bool* adaptive = parser.AddBool(
      "adaptive", false,
      "latch decode onto FLAT when a device's windowed TTFT slips past --slo-ttft-us");
  const bool* coalesce_decode = parser.AddBool(
      "coalesce-decode", false,
      "merge a round's concurrent ready decode steps into one N>1 simulation");
  const std::int64_t* pressure_window = parser.AddInt(
      "pressure-window", 4, "TTFT samples in the --adaptive pressure estimate");
  const std::string* fault_flag = parser.AddString(
      "fault", "",
      "seeded fault injection per device, kind[:key=value,...] (stall | derate | crash); "
      "each device draws an independent stream salted with its index");
  const std::int64_t* fault_seed =
      parser.AddInt("fault-seed", 0, "override the fault stream seed (0 = default)");
  const double* deadline_ttft_us = parser.AddDouble(
      "deadline-ttft-us", 0.0,
      "per-request TTFT deadline in microseconds; defines goodput and powers "
      "--shed-late (0 = none)");
  const double* deadline_total_us = parser.AddDouble(
      "deadline-total-us", 0.0,
      "per-request total deadline in microseconds; overdue requests are "
      "timeout-killed (0 = none)");
  const std::int64_t* max_retries = parser.AddInt(
      "max-retries", 0, "crash retries per request (a retry re-enters admission "
      "on its own device)");
  const std::int64_t* retry_backoff_ticks = parser.AddInt(
      "retry-backoff-ticks", 1, "base retry backoff in ticks, doubling per attempt");
  const std::int64_t* admission_queue_cap = parser.AddInt(
      "admission-queue-cap", 0,
      "per-device waiting-queue bound; arrivals beyond it are shed (0 = unbounded)");
  const bool* shed_late = parser.AddBool(
      "shed-late", false,
      "shed waiting requests whose --deadline-ttft-us budget is already spent");

  try {
    if (!parser.Parse(argc, argv)) return 0;
    if (*list_backends) {
      cli::PrintBackendCatalog(std::cout);
      return 0;
    }
    MAS_CHECK(parser.positional().empty())
        << "mas_fleet takes no positional arguments (see --help)";

    MAS_CHECK(*devices >= 1 && *devices <= 1024)
        << "--devices must be in [1, 1024], got " << *devices;
    MAS_CHECK(*jobs >= 1 && *jobs <= 4096) << "--jobs must be in [1, 4096], got " << *jobs;
    MAS_CHECK(*max_batch >= 1 && *max_batch <= 4096)
        << "--max-batch must be in [1, 4096], got " << *max_batch;
    MAS_CHECK(*synth_tenants >= 0 && *synth_tenants <= 4096)
        << "--synth-tenants must be in [0, 4096], got " << *synth_tenants;

    fleet::FleetOptions options;
    options.devices = static_cast<int>(*devices);
    options.jobs = static_cast<int>(*jobs);
    options.router = fleet::RouterSpec::Parse(*router_flag);
    if (*router_seed != 0) options.router_seed = static_cast<std::uint64_t>(*router_seed);
    MAS_CHECK(*drain >= 0) << "--drain-tokens-per-tick must be non-negative, got " << *drain;
    options.drain_tokens_per_tick = *drain;
    options.tenants = fleet::TenantPolicySpec::Parse(*tenants_flag);
    // Device hardware, most specific wins: --device-hw cycles a ';'-separated
    // backend spec list across the fleet; otherwise --hw resolves one spec
    // for every device ('mixed' is legacy sugar for 'edge;npu'). The default
    // 'edge' keeps device_hw empty — the FleetRouter's all-EdgeSimConfig
    // path, byte-identical to earlier versions.
    if (!device_hw_flag->empty()) {
      options.device_hw = sim::ResolveBackendList(*device_hw_flag, options.devices);
    } else if (*hw_flag == "mixed") {
      options.device_hw = sim::ResolveBackendList("edge;npu", options.devices, "--hw");
    } else if (*hw_flag != "edge") {
      options.device_hw.assign(static_cast<std::size_t>(options.devices),
                               sim::ResolveBackend(*hw_flag));
    }
    // Calibration and µs -> cycle conversions run on device 0's clock; in a
    // heterogeneous fleet the other devices simply serve their share at
    // their own frequency.
    const sim::HardwareConfig hw0 =
        options.device_hw.empty() ? sim::EdgeSimConfig() : options.device_hw[0];

    // --trace: an existing file loads as JSON; anything else is a preset.
    serve::RequestTrace trace;
    const bool trace_is_file = std::ifstream(*trace_flag).good();
    if (!arrival_flag->empty()) {
      MAS_CHECK(!trace_is_file)
          << "--arrival generates arrival ticks and cannot be combined with trace file '"
          << *trace_flag << "'; name a preset shape (chat | decode_heavy | mixed_sd)";
      serve::ArrivalCalibration calibration;
      calibration.frequency_ghz = hw0.frequency_ghz;
      calibration.cycles_per_tick = *cycles_per_tick;
      const serve::ArrivalSpec arrival_spec = serve::ArrivalSpec::Parse(*arrival_flag);
      const std::unique_ptr<serve::ArrivalModel> model =
          serve::ArrivalModelRegistry::Instance().Create(arrival_spec, calibration);
      serve::SyntheticTraceSpec shape = serve::FindTracePreset(*trace_flag, *requests);
      shape.tenants = *synth_tenants;
      trace = serve::RequestTrace::FromArrivalModel(*model, shape);
    } else if (trace_is_file) {
      trace = serve::RequestTrace::LoadFile(*trace_flag);
    } else {
      serve::SyntheticTraceSpec shape = serve::FindTracePreset(*trace_flag, *requests);
      shape.tenants = *synth_tenants;
      trace = serve::GenerateTrace(shape);
    }
    if (!save_trace->empty()) {
      trace.SaveFile(*save_trace);
      std::cerr << "wrote trace " << *save_trace << "\n";
    }

    options.planner.prefill_method = *prefill_method;
    options.planner.decode_method = *decode_method;
    options.planner.min_context_bucket = *bucket;
    options.planner.prefill_backend = *prefill_backend;
    options.planner.decode_backend = *decode_backend;

    serve::ServeSessionOptions& session = options.session;
    session.max_batch = static_cast<int>(*max_batch);
    session.coalesce_decode = *coalesce_decode;
    if (*adaptive) {
      MAS_CHECK(*slo_ttft_us > 0.0) << "--adaptive needs a positive --slo-ttft-us target";
      MAS_CHECK(*pressure_window >= 1 && *pressure_window <= 4096)
          << "--pressure-window must be in [1, 4096], got " << *pressure_window;
      session.pressure.enabled = true;
      session.pressure.ttft_target_cycles = *slo_ttft_us * hw0.frequency_ghz * 1e3;
      session.pressure.window = static_cast<int>(*pressure_window);
      session.pressure.relief_method = "FLAT";
    }
    const double cycles_per_us = hw0.frequency_ghz * 1e3;
    if (!fault_flag->empty()) {
      session.fault = serve::FaultSpec::Parse(*fault_flag);
      if (*fault_seed != 0) session.fault_seed = static_cast<std::uint64_t>(*fault_seed);
    }
    MAS_CHECK(*deadline_ttft_us >= 0.0)
        << "--deadline-ttft-us must be non-negative, got " << *deadline_ttft_us;
    MAS_CHECK(*deadline_total_us >= 0.0)
        << "--deadline-total-us must be non-negative, got " << *deadline_total_us;
    serve::ResiliencePolicy& resilience = session.resilience;
    resilience.ttft_deadline_cycles =
        static_cast<std::uint64_t>(*deadline_ttft_us * cycles_per_us);
    resilience.total_deadline_cycles =
        static_cast<std::uint64_t>(*deadline_total_us * cycles_per_us);
    resilience.max_retries = *max_retries;
    resilience.retry_backoff_ticks = *retry_backoff_ticks;
    resilience.admission_queue_cap = *admission_queue_cap;
    resilience.shed_late = *shed_late;

    Planner planner;
    std::size_t plans_loaded = 0;
    if (!plan_cache->empty()) {
      if (planner.store().LoadFile(*plan_cache)) plans_loaded = planner.store().size();
    }

    fleet::FleetRouter fleet_router(planner, options);
    const fleet::FleetResult result = fleet_router.Run(trace);

    serve::SloTargets slo_targets;
    slo_targets.ttft_us = *slo_ttft_us;
    slo_targets.tpot_us = *slo_tpot_us;
    const serve::SloReport slo = fleet::EvaluateFleetSlo(result, slo_targets);

    std::cout << "=== mas_fleet: trace '" << trace.name << "', " << options.devices
              << " devices, router " << options.router.ToString() << " ===\n";
    if (options.tenants.enabled()) {
      std::cout << "tenant policy: " << options.tenants.ToString() << "\n";
    }
    std::cout << "\ndevice  hardware      requests  tokens    makespan_ms  p99_ttft_cycles\n";
    for (const fleet::DeviceReport& d : result.devices) {
      std::printf("%-7d %-13s %-9lld %-9lld %-12s %.0f\n", d.device, d.hw.name.c_str(),
                  static_cast<long long>(d.routed_requests),
                  static_cast<long long>(d.routed_tokens),
                  FormatFixed(d.result.metrics.MakespanMs(d.hw.frequency_ghz), 3).c_str(),
                  d.result.metrics.p99_ttft_cycles);
    }
    if (!result.tenant_reports.empty() &&
        (result.tenant_reports.size() > 1 || !result.tenant_reports[0].tenant.empty())) {
      std::cout << "\ntenant  requests  completed  mean_ttft_cycles  p99_ttft_cycles\n";
      for (const fleet::TenantReport& t : result.tenant_reports) {
        std::printf("%-7s %-9lld %-10lld %-17.0f %.0f\n",
                    t.tenant.empty() ? "-" : t.tenant.c_str(),
                    static_cast<long long>(t.requests), static_cast<long long>(t.completed),
                    t.mean_ttft_cycles, t.p99_ttft_cycles);
      }
    }
    const fleet::FleetMetrics& fm = result.metrics;
    std::cout << "\nfleet: " << fm.requests << " requests (" << fm.completed
              << " completed), makespan " << FormatFixed(fm.makespan_ms, 3) << " ms, "
              << FormatFixed(fm.tokens_per_second, 1) << " tok/s, imbalance "
              << FormatFixed(fm.imbalance, 3) << "\n";
    std::cout << "fleet p50/p95/p99 TTFT cycles: " << FormatFixed(fm.p50_ttft_cycles, 0)
              << " / " << FormatFixed(fm.p95_ttft_cycles, 0) << " / "
              << FormatFixed(fm.p99_ttft_cycles, 0) << "\n";
    if (slo_targets.HasTtft() || slo_targets.HasTpot()) {
      std::cout << "SLO attainment: TTFT " << slo.ttft_ok << "/" << slo.requests << " ("
                << FormatFixed(slo.TtftAttainment(), 3) << "), TPOT " << slo.tpot_ok << "/"
                << slo.decode_requests << " (" << FormatFixed(slo.TpotAttainment(), 3)
                << "), joint " << slo.joint_ok << "/" << slo.requests << " ("
                << FormatFixed(slo.JointAttainment(), 3) << ")\n";
    }

    if (!out_file->empty()) {
      JsonWriter json;
      json.BeginObject();
      json.KeyValue("tool", "mas_fleet");
      json.KeyValue("hw", *hw_flag);
      // Heterogeneity keys appear only when configured, keeping the default
      // envelope byte-identical to earlier versions.
      if (!device_hw_flag->empty()) json.KeyValue("device_hw", *device_hw_flag);
      if (!prefill_backend->empty()) json.KeyValue("prefill_backend", *prefill_backend);
      if (!decode_backend->empty()) json.KeyValue("decode_backend", *decode_backend);
      json.KeyValue("model", options.geometry.name);
      json.KeyValue("prefill_method", *prefill_method);
      json.KeyValue("decode_method", *decode_method);
      json.KeyValue("min_context_bucket", *bucket);
      json.KeyValue("max_batch", static_cast<std::int64_t>(session.max_batch));
      json.KeyValue("arrival", *arrival_flag);
      json.KeyValue("cycles_per_tick", *cycles_per_tick);
      json.KeyValue("adaptive", *adaptive);
      json.KeyValue("coalesce_decode", *coalesce_decode);
      // Resilience configuration echoes only when the layer is in play, so a
      // plain run's envelope stays schema-stable (mirroring mas_serve).
      if (session.fault.enabled() || resilience.AnyEnabled()) {
        json.KeyValue("fault",
                      session.fault.enabled() ? session.fault.ToString() : std::string());
        json.KeyValue("fault_seed", session.fault_seed);
        json.KeyValue("deadline_ttft_us", *deadline_ttft_us);
        json.KeyValue("deadline_total_us", *deadline_total_us);
        json.KeyValue("max_retries", resilience.max_retries);
        json.KeyValue("retry_backoff_ticks", resilience.retry_backoff_ticks);
        json.KeyValue("admission_queue_cap", resilience.admission_queue_cap);
        json.KeyValue("shed_late", resilience.shed_late);
      }
      serve::WriteSloJson(json, slo_targets, slo);
      result.WriteJson(json);
      json.EndObject();
      WriteFile(*out_file, json.Take() + "\n");
      std::cout << "wrote " << *out_file << "\n";
    }

    // Machine-greppable run summary (stderr, mirroring mas_serve): the
    // warm-cache CI check asserts "tuned 0 (0 search evaluations)".
    std::fprintf(stderr,
                 "mas_fleet: %lld requests, %lld devices, %lld plans, plans reused %lld, "
                 "tuned %lld (%lld search evaluations)\n",
                 static_cast<long long>(fm.requests),
                 static_cast<long long>(fm.devices),
                 static_cast<long long>(planner.store().size()),
                 static_cast<long long>(planner.plans_reused()),
                 static_cast<long long>(planner.plans_tuned()),
                 static_cast<long long>(planner.search_evaluations()));
    if (!plan_cache->empty()) {
      planner.store().SaveFile(*plan_cache);
      std::fprintf(stderr, "plan-cache: loaded %lld plans, saved %lld -> %s\n",
                   static_cast<long long>(plans_loaded),
                   static_cast<long long>(planner.store().size()), plan_cache->c_str());
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
